// LiveAudit — the online auditor must agree with the batch audit_trace on
// real multi-failure runs (in merged order AND under a collector-style
// cross-process interleaving), and must catch hand-injected orphan commits
// in both temporal directions: announce-then-commit (immediate dead check)
// and commit-then-announce (the watermark direction, where the output
// escaped before the failure was announced). Violations cite the offending
// event's stable "P<pid>#<seq>" id.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "app/workloads.h"
#include "core/cluster.h"
#include "obs/audit.h"
#include "obs/live_audit.h"

namespace koptlog {
namespace {

std::vector<ProtocolEvent> record_multi_failure_events() {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.seed = 4242;
  cfg.protocol.k = 2;
  cfg.enable_oracle = false;
  cfg.record_events = true;
  Cluster cluster(cfg, make_uniform_app({.output_every = 4}));
  cluster.start();
  inject_uniform_load(cluster, 150, 1'000, 600'000, 5, 17);
  cluster.fail_at(200'000, 1);
  cluster.fail_at(380'000, 3);
  cluster.run_for(2'000'000);
  cluster.drain();
  EXPECT_NE(cluster.recording(), nullptr);
  return cluster.recording()->merged();
}

TEST(LiveAuditTest, AgreesWithBatchAuditOnMultiFailureRun) {
  std::vector<ProtocolEvent> events = record_multi_failure_events();
  ASSERT_GT(events.size(), 100u);

  Trace trace;
  trace.n = 5;
  trace.events = events;
  AuditReport batch = audit_trace(trace);
  ASSERT_TRUE(batch.ok()) << batch.summary();

  LiveAudit live(5);
  for (const ProtocolEvent& e : events) live.on_event(e);
  EXPECT_TRUE(live.ok()) << live.first_violation();
  AuditReport rep = live.report();
  EXPECT_EQ(rep.events, batch.events);
  EXPECT_EQ(rep.intervals, batch.intervals);
  EXPECT_EQ(rep.dead_intervals, batch.dead_intervals);
  EXPECT_EQ(rep.announcements, batch.announcements);
  EXPECT_EQ(rep.rollbacks, batch.rollbacks);
  EXPECT_EQ(rep.releases_checked, batch.releases_checked);
  EXPECT_EQ(rep.commits_checked, batch.commits_checked);
  EXPECT_EQ(rep.distinct_outputs, batch.distinct_outputs);
  // Real coverage, not a vacuous pass.
  EXPECT_GE(rep.announcements, 2u);
  EXPECT_GT(rep.dead_intervals, 0u);
  EXPECT_GT(rep.commits_checked, 0u);
}

TEST(LiveAuditTest, CrossProcessInterleavingIsImmaterial) {
  // The collector drains per-process rings round-robin, so the auditor sees
  // per-process streams in order but an arbitrary interleave across
  // processes — including commits draining before the delivers that created
  // their ancestor intervals. Feed whole processes back to back (the most
  // skewed interleave possible) and expect the same green verdict.
  std::vector<ProtocolEvent> events = record_multi_failure_events();
  std::map<ProcessId, std::vector<ProtocolEvent>> by_pid;
  for (const ProtocolEvent& e : events) by_pid[e.pid].push_back(e);

  LiveAudit live(5);
  for (auto it = by_pid.rbegin(); it != by_pid.rend(); ++it) {
    for (const ProtocolEvent& e : it->second) live.on_event(e);
  }
  EXPECT_TRUE(live.ok()) << live.first_violation();
  AuditReport rep = live.report();
  EXPECT_EQ(rep.events, events.size());
  EXPECT_GT(rep.commits_checked, 0u);
}

// -- Hand-crafted violation vectors ----------------------------------------

ProtocolEvent deliver(ProcessId pid, uint64_t seq, SimTime t, Entry at,
                      IntervalId ref) {
  ProtocolEvent e;
  e.kind = EventKind::kDeliver;
  e.t = t;
  e.pid = pid;
  e.seq = seq;
  e.at = at;
  e.msg = MsgId{ref.pid, 1};
  e.peer = ref.pid;
  e.ref = ref;
  return e;
}

ProtocolEvent announce(ProcessId pid, uint64_t seq, SimTime t, Entry ended) {
  ProtocolEvent e;
  e.kind = EventKind::kFailureAnnounce;
  e.t = t;
  e.pid = pid;
  e.seq = seq;
  e.at = ended;
  e.ended = ended;
  e.from_failure = true;
  return e;
}

ProtocolEvent commit(ProcessId pid, uint64_t seq, SimTime t, IntervalId ref,
                     DepVector tdv) {
  ProtocolEvent e;
  e.kind = EventKind::kOutputCommit;
  e.t = t;
  e.pid = pid;
  e.seq = seq;
  e.at = Entry{ref.inc, ref.sii};
  e.msg = MsgId{pid, 1};
  e.ref = ref;
  e.tdv = std::move(tdv);
  return e;
}

TEST(LiveAuditTest, AnnounceThenCommitIsCaughtImmediately) {
  LiveAudit live(2);
  live.on_event(deliver(0, 0, 10, Entry{0, 5}, IntervalId{kEnvironment, 0, 0}));
  live.on_event(announce(0, 1, 20, Entry{0, 3}));  // sii 4,5 now dead
  ASSERT_TRUE(live.ok());
  DepVector tdv(2);
  tdv.set(0, Entry{0, 5});  // the dead interval
  live.on_event(commit(1, 0, 30, IntervalId{1, 0, 1}, tdv));
  EXPECT_FALSE(live.ok());
  EXPECT_EQ(live.violation_count(), 1u);
  // Cited against the commit event's stable id.
  EXPECT_EQ(live.first_violation().substr(0, 5), "P1#0 ")
      << live.first_violation();
  EXPECT_NE(live.first_violation().find("dead dependency"), std::string::npos);
}

TEST(LiveAuditTest, CommitThenAnnounceIsCaughtByWatermark) {
  // The dangerous direction: the output escapes first, the failure that
  // orphans it is announced later. The watermark must convict the
  // announcement and cite the already-committed output.
  LiveAudit live(2);
  live.on_event(deliver(0, 0, 10, Entry{0, 5}, IntervalId{kEnvironment, 0, 0}));
  DepVector tdv(2);
  tdv.set(0, Entry{0, 5});
  live.on_event(commit(1, 0, 20, IntervalId{1, 0, 1}, tdv));
  ASSERT_TRUE(live.ok());  // nothing announced yet: commit looks fine
  live.on_event(announce(0, 1, 30, Entry{0, 3}));
  EXPECT_FALSE(live.ok());
  // The violation fires at the announcement but names the commit (P1#0).
  EXPECT_NE(live.first_violation().find("orphans already-committed"),
            std::string::npos)
      << live.first_violation();
  EXPECT_NE(live.first_violation().find("P1#0"), std::string::npos);
}

TEST(LiveAuditTest, DeferredClosureConvictsLateMaterializedAncestor) {
  // A commit's closure reaches an interval on another process whose
  // creating deliver has not drained yet (cross-process drain order is
  // free). The closure stops at the unknown interval and must resume —
  // under the original commit's witness — when the deliver materializes
  // the parent edge to an interval that is dead.
  LiveAudit live(3);
  // P0 creates (0,5) and dies back to sii 3: (0,5) is dead.
  live.on_event(deliver(0, 0, 10, Entry{0, 5}, IntervalId{kEnvironment, 0, 0}));
  live.on_event(announce(0, 1, 20, Entry{0, 3}));
  // P1's interval (0,2) descends from P2's interval (0,7) — P2's ring has
  // not been drained yet, so (0,7)_2 is an unknown leaf.
  live.on_event(deliver(1, 0, 22, Entry{0, 2}, IntervalId{2, 0, 7}));
  DepVector tdv(3);
  tdv.set(1, Entry{0, 2});
  live.on_event(commit(1, 1, 30, IntervalId{1, 0, 2}, tdv));
  ASSERT_TRUE(live.ok()) << live.first_violation();
  // Now P2's ring drains: (0,7)_2 was created from P0's dead (0,5)_0. The
  // resumed fold must convict the earlier commit by name.
  live.on_event(deliver(2, 0, 25, Entry{0, 7}, IntervalId{0, 0, 5}));
  EXPECT_FALSE(live.ok());
  EXPECT_NE(live.first_violation().find("rolled-back interval (0,5)_0"),
            std::string::npos)
      << live.first_violation();
  EXPECT_NE(live.first_violation().find("commit P1#1"), std::string::npos);
}

TEST(LiveAuditTest, ReleaseOverKBoundIsCaught) {
  LiveAudit live(3);
  ProtocolEvent e;
  e.kind = EventKind::kBufferRelease;
  e.t = 1;
  e.pid = 0;
  e.seq = 0;
  e.at = Entry{0, 1};
  e.msg = MsgId{0, 1};
  e.peer = 1;
  e.ref = IntervalId{0, 0, 1};
  DepVector tdv(3);
  tdv.set(0, Entry{0, 1});
  tdv.set(2, Entry{0, 4});
  e.tdv = tdv;
  e.k_limit = 1;
  e.k_reached = 2;
  live.on_event(e);
  EXPECT_FALSE(live.ok());
  EXPECT_NE(live.first_violation().find("> K=1"), std::string::npos)
      << live.first_violation();

  // Same release is legal under K=2.
  LiveAudit live2(3);
  e.k_limit = 2;
  live2.on_event(e);
  EXPECT_TRUE(live2.ok()) << live2.first_violation();

  // A release whose k_reached disagrees with its own vector is lying.
  LiveAudit live3(3);
  e.k_reached = 1;
  live3.on_event(e);
  EXPECT_FALSE(live3.ok());
}

TEST(LiveAuditTest, UnexplainedIncarnationBumpIsCaught) {
  LiveAudit live(2);
  ProtocolEvent e;
  e.kind = EventKind::kIncarnationBump;
  e.t = 5;
  e.pid = 0;
  e.seq = 0;
  e.at = Entry{1, 1};
  live.on_event(e);
  EXPECT_FALSE(live.ok());
  EXPECT_NE(live.first_violation().find("without a preceding"),
            std::string::npos)
      << live.first_violation();
}

TEST(LiveAuditTest, RecorderDropsAreAccountedNotViolations) {
  LiveAudit live(2);
  ProtocolEvent e;
  e.kind = EventKind::kRecorderDrop;
  e.t = 5;
  e.pid = 0;
  e.seq = 3;
  e.at = Entry{0, 1};
  e.undone = 17;
  live.on_event(e);
  EXPECT_TRUE(live.ok());
  EXPECT_EQ(live.report().dropped_events, 17u);
  EXPECT_NE(live.report().summary().find("dropped=17"), std::string::npos);
}

}  // namespace
}  // namespace koptlog
