#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace koptlog {
namespace {

TEST(LatencyModelTest, NoJitterIsDeterministic) {
  LatencyModel lm{.base_us = 100, .per_byte_us = 1.0, .jitter_us = 0,
                  .jitter = Jitter::kNone};
  Rng rng(1);
  EXPECT_EQ(lm.sample(rng, 50), 150);
  EXPECT_EQ(lm.sample(rng, 0), 100);
}

TEST(LatencyModelTest, UniformJitterWithinRange) {
  LatencyModel lm{.base_us = 10, .per_byte_us = 0.0, .jitter_us = 100,
                  .jitter = Jitter::kUniform};
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    SimTime t = lm.sample(rng, 0);
    EXPECT_GE(t, 10);
    EXPECT_LT(t, 110);
  }
}

TEST(LatencyModelTest, MinimumOneMicrosecond) {
  LatencyModel lm{.base_us = 0, .per_byte_us = 0.0, .jitter_us = 0,
                  .jitter = Jitter::kNone};
  Rng rng(1);
  EXPECT_EQ(lm.sample(rng, 0), 1);
}

TEST(NetworkTest, DeliversAfterLatency) {
  Simulator sim;
  Network net(sim, Rng(1), LatencyModel{.base_us = 250, .per_byte_us = 0.0,
                                        .jitter_us = 0, .jitter = Jitter::kNone},
              /*fifo=*/false);
  SimTime delivered_at = -1;
  net.send(0, 1, 10, [&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered_at, 250);
  EXPECT_EQ(net.messages_sent(), 1);
  EXPECT_EQ(net.bytes_sent(), 10);
}

TEST(NetworkTest, NonFifoCanReorder) {
  Simulator sim;
  Network net(sim, Rng(3),
              LatencyModel{.base_us = 10, .per_byte_us = 0.0, .jitter_us = 5000,
                           .jitter = Jitter::kUniform},
              /*fifo=*/false);
  std::vector<int> arrival_order;
  for (int i = 0; i < 50; ++i) {
    net.send(0, 1, 1, [&arrival_order, i] { arrival_order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(arrival_order.size(), 50u);
  bool reordered = false;
  for (size_t i = 1; i < arrival_order.size(); ++i) {
    if (arrival_order[i] < arrival_order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered) << "high jitter should reorder some messages";
}

TEST(NetworkTest, FifoPreservesPerChannelOrder) {
  Simulator sim;
  Network net(sim, Rng(3),
              LatencyModel{.base_us = 10, .per_byte_us = 0.0, .jitter_us = 5000,
                           .jitter = Jitter::kUniform},
              /*fifo=*/true);
  std::vector<int> arrival_order;
  for (int i = 0; i < 50; ++i) {
    net.send(0, 1, 1, [&arrival_order, i] { arrival_order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(arrival_order.size(), 50u);
  for (size_t i = 0; i < arrival_order.size(); ++i) {
    EXPECT_EQ(arrival_order[i], static_cast<int>(i));
  }
}

TEST(NetworkTest, FifoOrderIsPerChannelNotGlobal) {
  Simulator sim;
  // Large jitter: channel (0,1) and channel (2,1) interleave freely even in
  // FIFO mode; only each channel's own order is fixed.
  Network net(sim, Rng(11),
              LatencyModel{.base_us = 10, .per_byte_us = 0.0, .jitter_us = 5000,
                           .jitter = Jitter::kUniform},
              /*fifo=*/true);
  std::vector<std::pair<int, int>> arrivals;  // (channel, seq)
  for (int i = 0; i < 20; ++i) {
    net.send(0, 1, 1, [&arrivals, i] { arrivals.emplace_back(0, i); });
    net.send(2, 1, 1, [&arrivals, i] { arrivals.emplace_back(2, i); });
  }
  sim.run();
  int last0 = -1, last2 = -1;
  for (auto [ch, seq] : arrivals) {
    if (ch == 0) {
      EXPECT_GT(seq, last0);
      last0 = seq;
    } else {
      EXPECT_GT(seq, last2);
      last2 = seq;
    }
  }
}

TEST(NetworkTest, PerByteCostAffectsLatency) {
  Simulator sim;
  Network net(sim, Rng(1),
              LatencyModel{.base_us = 100, .per_byte_us = 2.0, .jitter_us = 0,
                           .jitter = Jitter::kNone},
              /*fifo=*/false);
  SimTime small_at = -1, big_at = -1;
  net.send(0, 1, 10, [&] { small_at = sim.now(); });
  net.send(0, 2, 1000, [&] { big_at = sim.now(); });
  sim.run();
  EXPECT_EQ(small_at, 120);
  EXPECT_EQ(big_at, 2100);
}

}  // namespace
}  // namespace koptlog
