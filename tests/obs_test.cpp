// The src/obs/ pipeline in isolation: recorder stamping, deterministic
// merge order, JSONL round-trip fidelity, strict-schema rejection, and the
// Perfetto/Prometheus exporters' surface shape. The end-to-end path
// (record a run -> serialize -> audit) lives in audit_test.cpp.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/audit.h"
#include "obs/event.h"
#include "obs/event_recorder.h"
#include "obs/export.h"
#include "obs/ring_recorder.h"
#include "obs/trace_io.h"

namespace koptlog {
namespace {

TEST(EventKindTest, NamesRoundTripForEveryKind) {
  // Enumerates via kEventKindCount so a newly added kind cannot dodge the
  // check by being left off a hand-maintained list.
  for (int32_t i = 0; i < kEventKindCount; ++i) {
    EventKind k = static_cast<EventKind>(i);
    std::string_view name = event_kind_name(k);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << "kind " << i << " has no name";
    auto back = event_kind_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(event_kind_from_name("not_a_kind").has_value());
  EXPECT_FALSE(event_kind_from_name("").has_value());
}

TEST(EventRecorderTest, StampsPidAndSequence) {
  VectorRecorder r(3);
  ProtocolEvent e;
  e.kind = EventKind::kCheckpoint;
  e.t = 10;
  e.pid = 99;  // recorder must overwrite this
  e.seq = 99;
  r.record(e);
  e.t = 20;
  r.record(e);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.events()[0].pid, 3);
  EXPECT_EQ(r.events()[0].seq, 0u);
  EXPECT_EQ(r.events()[1].pid, 3);
  EXPECT_EQ(r.events()[1].seq, 1u);
  r.clear();
  EXPECT_EQ(r.size(), 0u);
  r.record(e);
  EXPECT_EQ(r.events()[0].seq, 0u);  // sequence restarts after clear
}

TEST(RingRecorderTest, DropsAndMarksOverflowWithOrderedStamps) {
  RingRecorder r(/*pid=*/1, /*capacity=*/4);
  EXPECT_EQ(r.capacity(), 4u);
  auto ev = [](SimTime t) {
    ProtocolEvent e;
    e.kind = EventKind::kCheckpoint;
    e.t = t;
    return e;
  };
  for (SimTime t = 0; t < 4; ++t) r.record(ev(t));
  EXPECT_EQ(r.occupancy(), 4u);
  // Ring full: the next three are dropped and counted, not stored.
  for (SimTime t = 4; t < 7; ++t) r.record(ev(t));
  EXPECT_EQ(r.dropped(), 3u);
  EXPECT_EQ(r.occupancy(), 4u);
  // Free space, then append: the gap marker must precede the new event and
  // carry a *smaller* seq (stamp order is stream order).
  std::vector<ProtocolEvent> drained;
  r.drain(2, [&](const ProtocolEvent& e) { drained.push_back(e); });
  ASSERT_EQ(drained.size(), 2u);
  r.record(ev(7));
  drained.clear();
  r.drain(100, [&](const ProtocolEvent& e) { drained.push_back(e); });
  ASSERT_EQ(drained.size(), 4u);  // 2 old events + marker + new event
  const ProtocolEvent& gap = drained[2];
  const ProtocolEvent& after = drained[3];
  EXPECT_EQ(gap.kind, EventKind::kRecorderDrop);
  EXPECT_EQ(gap.undone, 3);
  EXPECT_EQ(gap.pid, 1);
  EXPECT_EQ(gap.t, after.t);
  EXPECT_EQ(after.kind, EventKind::kCheckpoint);
  EXPECT_LT(gap.seq, after.seq);
  EXPECT_EQ(r.occupancy(), 0u);
  EXPECT_EQ(r.max_occupancy(), 4u);
  // size() counts accepted events (4 originals + marker + late one).
  EXPECT_EQ(r.size(), 6u);
}

TEST(RingRecorderTest, MarkerWaitsForTwoFreeSlots) {
  RingRecorder r(/*pid=*/0, /*capacity=*/2);
  auto ev = [](SimTime t) {
    ProtocolEvent e;
    e.kind = EventKind::kCheckpoint;
    e.t = t;
    return e;
  };
  r.record(ev(0));
  r.record(ev(1));
  r.record(ev(2));  // dropped
  EXPECT_EQ(r.dropped(), 1u);
  // Only one slot free: the marker cannot stay adjacent to the gap, so the
  // incoming event is dropped too rather than separating them.
  std::vector<ProtocolEvent> drained;
  r.drain(1, [&](const ProtocolEvent& e) { drained.push_back(e); });
  r.record(ev(3));
  EXPECT_EQ(r.dropped(), 2u);
  // With both slots free the marker (now covering 2 drops) and the next
  // event land together.
  r.drain(1, [&](const ProtocolEvent& e) { drained.push_back(e); });
  drained.clear();
  r.record(ev(4));
  r.drain(100, [&](const ProtocolEvent& e) { drained.push_back(e); });
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].kind, EventKind::kRecorderDrop);
  EXPECT_EQ(drained[0].undone, 2);
  EXPECT_EQ(drained[1].t, 4);
}

TEST(RingRecorderTest, SnapshotAndClearCoverResidualWindow) {
  Recording rec(2, RecordingOptions{RecordMode::kRing, /*ring_capacity=*/8});
  EXPECT_EQ(rec.mode(), RecordMode::kRing);
  ASSERT_NE(rec.ring(0), nullptr);
  ProtocolEvent e;
  e.kind = EventKind::kCheckpoint;
  e.t = 5;
  rec.recorder(0).record(e);
  rec.recorder(1).record(e);
  EXPECT_EQ(rec.total_events(), 2u);
  std::vector<ProtocolEvent> merged = rec.merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].pid, 0);
  EXPECT_EQ(merged[1].pid, 1);
  EXPECT_EQ(rec.total_dropped(), 0u);
  rec.clear();
  EXPECT_EQ(rec.total_events(), 0u);
  EXPECT_EQ(rec.ring(0)->occupancy(), 0u);
}

TEST(RecordingTest, MergedIsOrderedByTimePidSeq) {
  Recording rec(3);
  auto ev = [](SimTime t, EventKind k) {
    ProtocolEvent e;
    e.kind = k;
    e.t = t;
    return e;
  };
  // Same timestamp across processes; multiple events per process.
  rec.recorder(2).record(ev(100, EventKind::kCheckpoint));
  rec.recorder(0).record(ev(100, EventKind::kCheckpoint));
  rec.recorder(0).record(ev(100, EventKind::kRollback));
  rec.recorder(1).record(ev(50, EventKind::kCheckpoint));
  EXPECT_EQ(rec.total_events(), 4u);
  std::vector<ProtocolEvent> merged = rec.merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].t, 50);
  EXPECT_EQ(merged[0].pid, 1);
  EXPECT_EQ(merged[1].pid, 0);
  EXPECT_EQ(merged[1].seq, 0u);
  EXPECT_EQ(merged[2].pid, 0);
  EXPECT_EQ(merged[2].seq, 1u);
  EXPECT_EQ(merged[3].pid, 2);
}

/// One event of every kind, with every kind-relevant field populated,
/// so the round-trip test exercises each serializer branch.
std::vector<ProtocolEvent> one_of_each(int n) {
  DepVector tdv(n);
  tdv.set(0, Entry{1, 3});
  tdv.set(2, Entry{0, 7});
  std::vector<ProtocolEvent> out;
  ProtocolEvent e;
  e.kind = EventKind::kSend;
  e.t = 1;
  e.pid = 0;
  e.at = Entry{1, 3};
  e.tdv = tdv;
  e.msg = MsgId{0, 5};
  e.peer = 2;
  e.ref = IntervalId{0, 1, 3};
  e.k_limit = 2;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kDeliver;
  e.t = 2;
  e.pid = 2;
  e.at = Entry{0, 8};
  e.tdv = tdv;
  e.msg = MsgId{0, 5};
  e.peer = 0;
  e.ref = IntervalId{0, 1, 3};
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kBufferHold;
  e.t = 3;
  e.pid = 0;
  e.at = Entry{1, 3};
  e.msg = MsgId{0, 6};
  e.k_limit = 2;
  e.k_reached = 3;
  e.recv_side = false;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kBufferRelease;
  e.t = 4;
  e.pid = 0;
  e.at = Entry{1, 3};
  e.tdv = tdv;
  e.msg = MsgId{0, 6};
  e.peer = 1;
  e.ref = IntervalId{0, 1, 3};
  e.k_limit = 2;
  e.k_reached = 2;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kCheckpoint;
  e.t = 5;
  e.pid = 1;
  e.at = Entry{0, 4};
  e.tdv = tdv;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kFailureAnnounce;
  e.t = 6;
  e.pid = 1;
  e.at = Entry{1, 5};
  e.ended = Entry{0, 4};
  e.from_failure = true;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kRollback;
  e.t = 7;
  e.pid = 2;
  e.at = Entry{0, 6};
  e.ended = Entry{0, 8};
  e.undone = 3;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kOutputCommit;
  e.t = 8;
  e.pid = 2;
  e.at = Entry{0, 6};
  e.tdv = tdv;
  e.msg = MsgId{2, 9};
  e.ref = IntervalId{2, 0, 6};
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kRetransmit;
  e.t = 9;
  e.pid = 0;
  e.at = Entry{1, 3};
  e.msg = MsgId{0, 5};
  e.peer = 2;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kIncarnationBump;
  e.t = 10;
  e.pid = 1;
  e.at = Entry{1, 5};
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kStorageFlush;
  e.t = 11;
  e.pid = 0;
  e.at = Entry{1, 4};
  e.lsn = 12;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kStorageRecover;
  e.t = 12;
  e.pid = 1;
  e.at = Entry{1, 5};
  e.lsn = 7;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kProgressNotify;
  e.t = 13;
  e.pid = 0;
  e.at = Entry{1, 4};
  e.lsn = 5;
  out.push_back(e);
  e = ProtocolEvent{};
  e.kind = EventKind::kRecorderDrop;
  e.t = 14;
  e.pid = 2;
  e.at = Entry{0, 6};
  e.undone = 17;
  out.push_back(e);
  return out;
}

TEST(TraceIoTest, OneOfEachCoversEveryEventKind) {
  // The serializer round-trip below only proves fidelity for the kinds it
  // is fed; this pins the feed itself to the enum, so adding an EventKind
  // without extending the schema (and this fixture) fails loudly.
  std::vector<bool> seen(static_cast<size_t>(kEventKindCount), false);
  for (const ProtocolEvent& e : one_of_each(3)) {
    seen[static_cast<size_t>(e.kind)] = true;
  }
  for (int32_t i = 0; i < kEventKindCount; ++i) {
    EXPECT_TRUE(seen[static_cast<size_t>(i)])
        << "one_of_each() is missing kind "
        << event_kind_name(static_cast<EventKind>(i));
  }
}

TEST(TraceIoTest, JsonlRoundTripPreservesEveryField) {
  const int n = 3;
  std::vector<ProtocolEvent> events = one_of_each(n);
  std::ostringstream os;
  write_trace_jsonl(n, events, os);
  std::string text = os.str();
  // Header first, then one line per event.
  EXPECT_EQ(text.rfind("{\"kind\":\"meta\",\"version\":1,\"n\":3}\n", 0), 0u);
  std::istringstream is(text);
  std::vector<std::string> errors;
  Trace trace = read_trace_jsonl(is, errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  EXPECT_EQ(trace.n, n);
  ASSERT_EQ(trace.events.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(trace.events[i], events[i])
        << "event " << i << ": " << event_to_json(events[i]);
  }
}

TEST(TraceIoTest, StrictReaderReportsSchemaViolationsPerLine) {
  // Valid header and one valid event surrounded by five kinds of garbage:
  // the reader must report each bad line yet keep the good event.
  std::string text =
      "{\"kind\":\"meta\",\"version\":1,\"n\":2}\n"
      "{\"kind\":\"not_a_kind\",\"t\":1,\"p\":0,\"seq\":0,\"at\":[0,1]}\n"
      "{\"kind\":\"send\",\"t\":1,\"p\":0,\"seq\":1,\"at\":[0,1]}\n"  // no msg
      "{\"kind\":\"checkpoint\",\"t\":1,\"p\":7,\"seq\":0,"  // pid >= n
      "\"at\":[0,1],\"tdv\":[]}\n"
      "this is not json\n"
      "{\"kind\":\"checkpoint\",\"t\":2,\"p\":1,\"seq\":0,\"at\":[0,1],"
      "\"tdv\":[]}\n";
  std::istringstream is(text);
  std::vector<std::string> errors;
  Trace trace = read_trace_jsonl(is, errors);
  EXPECT_EQ(trace.n, 2);
  ASSERT_EQ(trace.events.size(), 1u);  // only the last line survives
  EXPECT_EQ(trace.events[0].kind, EventKind::kCheckpoint);
  EXPECT_EQ(trace.events[0].pid, 1);
  ASSERT_EQ(errors.size(), 4u);
  for (const std::string& err : errors) {
    EXPECT_EQ(err.rfind("line ", 0), 0u) << err;
  }
}

TEST(TraceIoTest, MissingOrBadHeaderIsAnError) {
  {
    std::istringstream is("");
    std::vector<std::string> errors;
    read_trace_jsonl(is, errors);
    EXPECT_FALSE(errors.empty());
  }
  {
    std::istringstream is(
        "{\"kind\":\"checkpoint\",\"t\":2,\"p\":1,\"seq\":0,\"at\":[0,1],"
        "\"tdv\":[]}\n");
    std::vector<std::string> errors;
    read_trace_jsonl(is, errors);
    EXPECT_FALSE(errors.empty());
  }
}

TEST(StreamingTraceParserTest, ChunkedFeedMatchesBatchReader) {
  const int n = 3;
  std::vector<ProtocolEvent> events = one_of_each(n);
  std::ostringstream os;
  write_trace_jsonl(n, events, os);
  const std::string text = os.str();
  std::vector<ProtocolEvent> streamed;
  StreamingTraceParser parser(
      [&](const ProtocolEvent& e) { streamed.push_back(e); });
  // Feed in adversarially small chunks so lines straddle every boundary.
  for (size_t i = 0; i < text.size(); i += 7) {
    parser.feed(std::string_view(text).substr(i, 7));
  }
  parser.finish();
  EXPECT_TRUE(parser.errors().empty())
      << (parser.errors().empty() ? "" : parser.errors()[0]);
  EXPECT_TRUE(parser.torn_tail().empty());
  EXPECT_EQ(parser.n(), n);
  ASSERT_EQ(streamed.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(streamed[i], events[i]) << "event " << i;
  }
}

TEST(StreamingTraceParserTest, TornFinalLineIsReportedNotAnError) {
  std::string text =
      "{\"kind\":\"meta\",\"version\":1,\"n\":2}\n"
      "{\"kind\":\"checkpoint\",\"t\":2,\"p\":1,\"seq\":0,\"at\":[0,1],"
      "\"tdv\":[]}\n"
      "{\"kind\":\"checkpoint\",\"t\":3,\"p\":0,\"se";  // writer died here
  size_t count = 0;
  StreamingTraceParser parser([&](const ProtocolEvent&) { ++count; });
  parser.feed(text);
  parser.finish();
  EXPECT_TRUE(parser.errors().empty())
      << (parser.errors().empty() ? "" : parser.errors()[0]);
  EXPECT_FALSE(parser.torn_tail().empty());
  EXPECT_EQ(count, 1u);
}

TEST(StreamingTraceParserTest, CompleteUnterminatedLastLineIsAccepted) {
  std::string text =
      "{\"kind\":\"meta\",\"version\":1,\"n\":2}\n"
      "{\"kind\":\"checkpoint\",\"t\":2,\"p\":1,\"seq\":0,\"at\":[0,1],"
      "\"tdv\":[]}";  // valid, just no trailing newline
  size_t count = 0;
  StreamingTraceParser parser([&](const ProtocolEvent&) { ++count; });
  parser.feed(text);
  parser.finish();
  EXPECT_TRUE(parser.errors().empty());
  EXPECT_TRUE(parser.torn_tail().empty());
  EXPECT_EQ(count, 1u);
}

TEST(StreamingTraceParserTest, MidFileGarbageStaysAnError) {
  std::string text =
      "{\"kind\":\"meta\",\"version\":1,\"n\":2}\n"
      "this is not json\n"
      "{\"kind\":\"checkpoint\",\"t\":2,\"p\":1,\"seq\":0,\"at\":[0,1],"
      "\"tdv\":[]}\n";
  size_t count = 0;
  StreamingTraceParser parser([&](const ProtocolEvent&) { ++count; });
  parser.feed(text);
  parser.finish();
  ASSERT_EQ(parser.errors().size(), 1u);
  EXPECT_EQ(parser.errors()[0].rfind("line 2", 0), 0u) << parser.errors()[0];
  EXPECT_EQ(count, 1u);
}

TEST(TraceIoTest, JsonEscapeControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\n\t"), "x\\n\\t");
}

TEST(ExportTest, PerfettoJsonHasTracksInstantsAndFlows) {
  const int n = 3;
  Trace trace;
  trace.n = n;
  trace.events = one_of_each(n);
  std::ostringstream os;
  write_perfetto_json(trace, os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  // Process-name metadata for each track.
  EXPECT_NE(out.find("process_name"), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
  // Instant events and a flow from the send/release to the delivery.
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"f\""), std::string::npos);
}

TEST(ExportTest, PrometheusTextExposesCountersAndSummaries) {
  Stats stats;
  stats.inc("announce.sent", 2);
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.sample("output.commit_latency_us", v);
  std::ostringstream os;
  write_prometheus_text(stats, os);
  std::string out = os.str();
  EXPECT_NE(out.find("koptlog_announce_sent 2"), std::string::npos);
  EXPECT_NE(out.find("# TYPE koptlog_announce_sent counter"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE koptlog_output_commit_latency_us summary"),
            std::string::npos);
  EXPECT_NE(out.find("koptlog_output_commit_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(out.find("koptlog_output_commit_latency_us_count 4"),
            std::string::npos);
  EXPECT_NE(out.find("koptlog_output_commit_latency_us_sum 10"),
            std::string::npos);
}

}  // namespace
}  // namespace koptlog
