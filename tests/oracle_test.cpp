// Unit tests of the ground-truth oracle itself — including negative tests
// that feed it protocol-violating histories and assert the violations are
// reported (so the property sweeps' "rep.ok" actually means something).
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/oracle.h"

namespace koptlog {
namespace {

AppMsg msg_from(IntervalId born_of, int n, SeqNo seq) {
  AppMsg m;
  m.id = MsgId{born_of.pid, seq};
  m.from = born_of.pid;
  m.tdv = DepVector(n);
  m.born_of = born_of;
  return m;
}

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() : o(3) {
    o.on_process_start(IntervalId{0, 0, 1}, 10);
    o.on_process_start(IntervalId{1, 0, 1}, 11);
    o.on_process_start(IntervalId{2, 0, 1}, 12);
  }
  Oracle o;
};

TEST_F(OracleTest, CleanHistoryVerifies) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_stable_watermark(0, Entry{0, 2}, 100);
  Oracle::Report rep = o.verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
  EXPECT_EQ(rep.intervals, 4u);
}

TEST_F(OracleTest, DoomPropagatesThroughMessagesAndSuccessors) {
  // P0: (0,2) volatile; P1 delivers a message sent from it -> (0,2)_1;
  // P1 continues to (0,3)_1. P0 crashes losing (0,2)_0.
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_interval_start(IntervalId{1, 0, 2}, IntervalId{0, 0, 2}, 2);
  o.on_interval_start(IntervalId{1, 0, 3}, IntervalId{kEnvironment, 0, 0}, 3);
  o.on_crash(0, 1);
  EXPECT_TRUE(o.doomed(IntervalId{1, 0, 2}));
  EXPECT_TRUE(o.doomed(IntervalId{1, 0, 3}));  // via same-process prev
  EXPECT_FALSE(o.doomed(IntervalId{1, 0, 1}));
  EXPECT_FALSE(o.doomed(IntervalId{2, 0, 1}));
  EXPECT_EQ(o.doomed_count(), 3u);  // (0,2)_0 itself plus the two at P1
}

TEST_F(OracleTest, SurvivingOrphanIsReported) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_interval_start(IntervalId{1, 0, 2}, IntervalId{0, 0, 2}, 2);
  o.on_crash(0, 1);
  // P1 never rolls back -> violation.
  Oracle::Report rep = o.verify();
  EXPECT_FALSE(rep.ok);
  ASSERT_FALSE(rep.violations.empty());
  EXPECT_NE(rep.violations[0].find("orphan"), std::string::npos);
}

TEST_F(OracleTest, ProperRollbackClearsTheViolation) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_interval_start(IntervalId{1, 0, 2}, IntervalId{0, 0, 2}, 2);
  o.on_crash(0, 1);
  o.on_rollback(1, 1);  // P1 undoes (0,2)_1
  o.on_recovery_interval(IntervalId{1, 1, 2}, 11);
  EXPECT_TRUE(o.verify().ok) << o.verify().summary();
}

TEST_F(OracleTest, SpuriousRollbackIsReported) {
  o.on_interval_start(IntervalId{1, 0, 2}, IntervalId{kEnvironment, 0, 0}, 2);
  o.on_rollback(1, 1);  // undoes a perfectly healthy interval
  Oracle::Report rep = o.verify();
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("spurious"), std::string::npos);
}

TEST_F(OracleTest, Theorem3ViolationNullingNonStableEntry) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_entry_nulled(1, 0, Entry{0, 2}, 50);  // (0,2)_0 is not stable
  Oracle::Report rep = o.verify();
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("Theorem 3"), std::string::npos);
}

TEST_F(OracleTest, NullingStableEntryIsFine) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_stable_watermark(0, Entry{0, 2}, 40);
  o.on_entry_nulled(1, 0, Entry{0, 2}, 50);
  EXPECT_TRUE(o.verify().ok);
}

TEST_F(OracleTest, KBoundViolationIsReported) {
  AppMsg m = msg_from(IntervalId{0, 0, 1}, 3, 1);
  o.on_msg_released(m, /*non_null=*/3, /*k=*/1, 10);
  Oracle::Report rep = o.verify();
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("K bound"), std::string::npos);
}

TEST_F(OracleTest, StrictTheorem4CatchesUncoveredNonStableDependency) {
  // (0,2)_0 (volatile) -> message delivered at P1 starting (0,2)_1; P1
  // releases a message claiming only its own entry is live.
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_interval_start(IntervalId{1, 0, 2}, IntervalId{0, 0, 2}, 2);
  AppMsg m = msg_from(IntervalId{1, 0, 2}, 3, 1);
  m.tdv.set(1, Entry{0, 2});  // live entry for P1 only; P0's dep uncovered
  o.on_msg_released(m, 1, 1, 99);
  Oracle::Report rep = o.verify(/*strict_thm4=*/true);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("Theorem 4"), std::string::npos);
  // Without the strict pass the release is not re-derived.
  EXPECT_TRUE(o.verify(false).ok);
}

TEST_F(OracleTest, StrictTheorem4AcceptsStableOrCoveredDependencies) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_interval_start(IntervalId{1, 0, 2}, IntervalId{0, 0, 2}, 2);
  o.on_stable_watermark(0, Entry{0, 2}, 50);  // P0's part became stable
  o.on_stable_watermark(1, Entry{0, 1}, 10);
  AppMsg m = msg_from(IntervalId{1, 0, 2}, 3, 1);
  m.tdv.set(1, Entry{0, 2});
  o.on_msg_released(m, 1, 1, 99);  // after P0's stability
  EXPECT_TRUE(o.verify(true).ok) << o.verify(true).summary();
}

TEST_F(OracleTest, DiscardOfNonOrphanIsReported) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  AppMsg m = msg_from(IntervalId{0, 0, 2}, 3, 1);
  o.on_msg_discarded(m);
  Oracle::Report rep = o.verify();
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("discarded non-orphan"), std::string::npos);
}

TEST_F(OracleTest, DiscardOfTrueOrphanIsFine) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_crash(0, 1);
  AppMsg m = msg_from(IntervalId{0, 0, 2}, 3, 1);
  o.on_msg_discarded(m);
  EXPECT_TRUE(o.verify().ok);
}

TEST_F(OracleTest, RevokedCommittedOutputIsReported) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_output_committed(MsgId{0, 1}, IntervalId{0, 0, 2}, 60);
  o.on_crash(0, 1);  // (0,2)_0 lost after the output committed
  Oracle::Report rep = o.verify();
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.violations[0].find("committed output"), std::string::npos);
}

TEST_F(OracleTest, ReplayHashMismatchIsReported) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_interval_finalized(IntervalId{0, 0, 2}, 1234);
  o.on_interval_replayed(IntervalId{0, 0, 2}, 9999);
  ASSERT_FALSE(o.online_violations().empty());
  EXPECT_NE(o.online_violations()[0].find("divergence"), std::string::npos);
}

TEST_F(OracleTest, StableIntervalLostIsReported) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  o.on_stable_watermark(0, Entry{0, 2}, 10);
  o.on_crash(0, 1);  // claims a stable interval was lost
  ASSERT_FALSE(o.online_violations().empty());
  EXPECT_NE(o.online_violations()[0].find("stable interval lost"),
            std::string::npos);
}

TEST_F(OracleTest, LostRecoveryIntervalIsBenign) {
  o.on_rollback(0, 1);  // no-op pop
  o.on_recovery_interval(IntervalId{0, 1, 2}, 10);
  o.on_crash(0, 1);  // loses only the bookkeeping interval
  Oracle::Report rep = o.verify();
  EXPECT_TRUE(rep.ok) << rep.summary();
  EXPECT_EQ(rep.lost, 0u);
  EXPECT_EQ(rep.undone, 1u);
}

TEST_F(OracleTest, NonContiguousIntervalThrows) {
  EXPECT_THROW(o.on_interval_start(IntervalId{0, 0, 5},
                                   IntervalId{kEnvironment, 0, 0}, 1),
               InvariantViolation);
}

TEST_F(OracleTest, DuplicateIntervalThrows) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  EXPECT_THROW(o.on_interval_start(IntervalId{0, 0, 2},
                                   IntervalId{kEnvironment, 0, 0}, 1),
               InvariantViolation);
}

TEST_F(OracleTest, StabilityQueriesExposeTime) {
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 1);
  EXPECT_FALSE(o.is_stable(IntervalId{0, 0, 2}));
  EXPECT_FALSE(o.stable_at(IntervalId{0, 0, 2}).has_value());
  o.on_stable_watermark(0, Entry{0, 2}, 77);
  EXPECT_TRUE(o.is_stable(IntervalId{0, 0, 2}));
  EXPECT_EQ(o.stable_at(IntervalId{0, 0, 2}), 77);
}

}  // namespace
}  // namespace koptlog
