// OutputBuffer unit tests: 0-optimistic output commit (paper §4.2 — an
// output is a message to the outside world with K = 0). A record commits
// only when every dependency entry passes the engine's stability predicate;
// with Theorem 2 on, entries are NULLed as they pass.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/output_buffer.h"
#include "runtime_test_util.h"

namespace koptlog {
namespace {

OutputRecord record(RuntimeFixture& fx, SeqNo seq,
                    std::initializer_list<ProcessId> deps) {
  OutputRecord rec;
  rec.id = MsgId{0, seq};
  rec.tdv = DepVector(fx.rt.n);
  for (ProcessId j : deps) rec.tdv.set(j, Entry{1, static_cast<Sii>(seq)});
  rec.born_of = IntervalId{0, 1, seq};
  rec.created_at = fx.api.sim().now();
  return rec;
}

TEST(OutputBufferTest, CommitsOnlyWhenEveryDependencyIsStable) {
  RuntimeFixture fx;
  OutputBuffer ob(fx.rt, /*null_stable_entries=*/true);
  ob.push(record(fx, 1, {1, 2}));

  // Only P1's intervals are stable: no commit, but the passing entry is
  // NULLed (commit dependency tracking).
  ob.check([](ProcessId j, const Entry&) { return j == 1; });
  EXPECT_TRUE(fx.api.outputs.empty());
  EXPECT_EQ(ob.size(), 1u);

  // P2 stabilizes next; the previously-NULLed P1 entry is not re-tested.
  int asked_p1 = 0;
  ob.check([&](ProcessId j, const Entry&) {
    if (j == 1) ++asked_p1;
    return j == 2;
  });
  EXPECT_EQ(asked_p1, 0);
  ASSERT_EQ(fx.api.outputs.size(), 1u);
  EXPECT_EQ(fx.api.outputs[0].id.seq, 1);
  EXPECT_TRUE(ob.empty());
}

TEST(OutputBufferTest, WithoutNullingStabilityIsRetestedEachCheck) {
  RuntimeFixture fx;
  // The Strom–Yemini / full-TDV regime: entries are never NULLed.
  OutputBuffer ob(fx.rt, /*null_stable_entries=*/false);
  ob.push(record(fx, 1, {1, 2}));

  ob.check([](ProcessId j, const Entry&) { return j == 1; });
  EXPECT_TRUE(fx.api.outputs.empty());

  int asked_p1 = 0;
  ob.check([&](ProcessId j, const Entry&) {
    if (j == 1) ++asked_p1;
    return true;
  });
  EXPECT_EQ(asked_p1, 1);
  EXPECT_EQ(fx.api.outputs.size(), 1u);
}

TEST(OutputBufferTest, DiscardIfDropsOrphanedRecords) {
  RuntimeFixture fx;
  OutputBuffer ob(fx.rt, true);
  ob.push(record(fx, 1, {1}));
  ob.push(record(fx, 2, {2}));

  std::vector<SeqNo> discarded;
  size_t n = ob.discard_if(
      [](const DepVector& v) { return v.at(2).has_value(); },
      [&](const OutputRecord& rec) { discarded.push_back(rec.id.seq); });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(discarded, (std::vector<SeqNo>{2}));
  EXPECT_EQ(ob.size(), 1u);
  EXPECT_TRUE(fx.api.outputs.empty());
}

}  // namespace
}  // namespace koptlog
