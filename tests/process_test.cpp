// Protocol-level unit tests of Process (paper Figures 2-3) on the manual
// harness: one assertion per protocol rule.
#include <gtest/gtest.h>

#include "common/check.h"
#include "test_harness.h"

namespace koptlog {
namespace {

ProtocolConfig quiet_config() {
  ProtocolConfig cfg;  // timers are disabled by the harness (draining)
  return cfg;
}

TEST(ProcessInit, Corollary3NoDependenciesAtStart) {
  TestHarness h(3);
  auto p = h.make_process(0, quiet_config());
  p->start();
  EXPECT_TRUE(p->tdv().all_null());
  EXPECT_EQ(p->current(), (Entry{0, 1}));
  // The initial checkpoint exists, making interval (0,1) stable.
  EXPECT_EQ(p->storage().checkpoints().size(), 1u);
  EXPECT_TRUE(p->log_table().of(0).covers(Entry{0, 1}));
}

TEST(ProcessInit, FiniteKWithoutNullingIsRejected) {
  TestHarness h(4);
  ProtocolConfig cfg;
  cfg.k = 2;
  cfg.null_stable_entries = false;
  EXPECT_THROW(h.make_process(0, cfg), InvariantViolation);
}

TEST(ProcessDeliver, EachDeliveryStartsANewInterval) {
  TestHarness h(2);
  auto p = h.make_process(0, quiet_config());
  p->start();
  h.tick(*p);
  EXPECT_EQ(p->current(), (Entry{0, 2}));
  h.tick(*p);
  EXPECT_EQ(p->current(), (Entry{0, 3}));
  EXPECT_EQ(p->deliveries(), 2);
  // Own entry tracks the current interval.
  ASSERT_TRUE(p->tdv().at(0).has_value());
  EXPECT_EQ(*p->tdv().at(0), (Entry{0, 3}));
}

TEST(ProcessDeliver, MergeAcquiresSenderDependencies) {
  TestHarness h(3);
  auto p0 = h.make_process(0, quiet_config());
  auto p1 = h.make_process(1, quiet_config());
  p0->start();
  p1->start();
  AppMsg m = h.command_send(*p0, 1);  // sent from (0,2)_0
  ASSERT_EQ(m.from, 0);
  EXPECT_EQ(m.born_of, (IntervalId{0, 0, 2}));
  p1->handle_app_msg(m);
  ASSERT_TRUE(p1->tdv().at(0).has_value());
  EXPECT_EQ(*p1->tdv().at(0), (Entry{0, 2}));
  EXPECT_EQ(*p1->tdv().at(1), (Entry{0, 2}));  // own new interval
}

TEST(ProcessDeliver, DuplicateMessagesAreDropped) {
  TestHarness h(2);
  auto p0 = h.make_process(0, quiet_config());
  auto p1 = h.make_process(1, quiet_config());
  p0->start();
  p1->start();
  AppMsg m = h.command_send(*p0, 1);
  p1->handle_app_msg(m);
  p1->handle_app_msg(m);
  EXPECT_EQ(p1->deliveries(), 1);
  EXPECT_EQ(h.stats().counter("msgs.duplicate"), 1);
}

TEST(SendBuffer, KZeroHoldsUntilDependenciesStable) {
  TestHarness h(2);
  ProtocolConfig cfg = quiet_config();
  cfg.k = 0;
  auto p = h.make_process(0, cfg);
  p->start();
  h.command_send(*p, 1);
  // The command delivery gave the message a dependency on (0,2)_0, which
  // is not yet stable -> held.
  EXPECT_EQ(p->send_buffer_size(), 1u);
  EXPECT_TRUE(h.sent.empty());
  // Flushing the log makes (0,2)_0 stable; the entry NULLs and the message
  // releases with zero risk.
  p->force_flush();
  EXPECT_EQ(p->send_buffer_size(), 0u);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].tdv.non_null_count(), 0);
}

TEST(SendBuffer, KOneReleasesWithSingleLiveEntry) {
  TestHarness h(4);
  ProtocolConfig cfg = quiet_config();
  cfg.k = 1;
  auto p = h.make_process(0, cfg);
  p->start();
  AppMsg m = h.command_send(*p, 1);
  // Only the sender's own (non-stable) entry is live -> exactly 1 <= K.
  EXPECT_EQ(p->send_buffer_size(), 0u);
  EXPECT_EQ(m.tdv.non_null_count(), 1);
  EXPECT_EQ(*m.tdv.at(0), (Entry{0, 2}));
}

TEST(SendBuffer, TransitiveRiskCountsTowardK) {
  TestHarness h(4);
  ProtocolConfig cfg = quiet_config();
  cfg.k = 1;
  auto p0 = h.make_process(0, cfg);
  auto p1 = h.make_process(1, cfg);
  p0->start();
  p1->start();
  AppMsg m01 = h.command_send(*p0, 1);
  p1->handle_app_msg(m01);  // P1 now depends on P0's non-stable interval
  h.command_send(*p1, 2);
  // P1's outgoing message has 2 live entries (P0's and its own) > K=1.
  EXPECT_EQ(p1->send_buffer_size(), 1u);
  // P0 flushes and notifies: P0's entry NULLs, risk drops to 1, releases.
  p0->force_flush();
  p0->broadcast_progress();
  ASSERT_FALSE(h.progresses.empty());
  p1->handle_log_progress(h.progresses.back());
  EXPECT_EQ(p1->send_buffer_size(), 0u);
}

TEST(Deliverability, TwoIncarnationConflictWaitsForStability) {
  TestHarness h(3);
  auto p2 = h.make_process(2, quiet_config());
  p2->start();
  // P2 already depends on (0,4)_1.
  AppMsg old_dep = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  old_dep.tdv.set(1, Entry{0, 4});
  old_dep.born_of = IntervalId{1, 0, 4};
  p2->handle_app_msg(old_dep);
  ASSERT_EQ(*p2->tdv().at(1), (Entry{0, 4}));
  // A message carrying (1,6)_1 arrives: two incarnations of P1 would
  // coexist; (0,4)_1 is not known stable -> held.
  AppMsg new_dep = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 1, 0, 0});
  new_dep.tdv.set(1, Entry{1, 6});
  new_dep.born_of = IntervalId{1, 1, 6};
  p2->handle_app_msg(new_dep);
  EXPECT_EQ(p2->receive_buffer_size(), 1u);
  EXPECT_EQ(*p2->tdv().at(1), (Entry{0, 4}));
  // A logging-progress notification certifying (0,4)_1 unblocks it
  // (Corollary 1 via Theorem 2).
  LogProgressMsg lp;
  lp.from = 1;
  lp.stable = {Entry{0, 4}};
  p2->handle_log_progress(lp);
  EXPECT_EQ(p2->receive_buffer_size(), 0u);
  EXPECT_EQ(*p2->tdv().at(1), (Entry{1, 6}));
}

TEST(Deliverability, Corollary1NoExistingEntryDeliversImmediately) {
  TestHarness h(3);
  auto p5 = h.make_process(2, quiet_config());
  p5->start();
  // m7 carries a dependency on P1's new incarnation; P5 has no entry for
  // P1 at all, so no wait (paper §3, last paragraph).
  AppMsg m7 = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  m7.tdv.set(1, Entry{1, 5});
  m7.born_of = IntervalId{1, 1, 5};
  p5->handle_app_msg(m7);
  EXPECT_EQ(p5->receive_buffer_size(), 0u);
  EXPECT_EQ(*p5->tdv().at(1), (Entry{1, 5}));
}

TEST(OrphanDetection, IncomingOrphanMessagesAreDiscarded) {
  TestHarness h(3);
  auto p2 = h.make_process(2, quiet_config());
  p2->start();
  // P1's incarnation 0 ended at 4.
  p2->handle_announcement(Announcement{1, Entry{0, 4}, true});
  // A late message depending on (0,6)_1 is an orphan.
  AppMsg orphan = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  orphan.tdv.set(1, Entry{0, 6});
  orphan.born_of = IntervalId{1, 0, 6};
  p2->handle_app_msg(orphan);
  EXPECT_EQ(p2->deliveries(), 0);
  EXPECT_EQ(h.stats().counter("msgs.discarded_orphan_recv"), 1);
  // But a message depending on the surviving prefix is fine.
  AppMsg fine = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 1, 0, 0});
  fine.tdv.set(1, Entry{0, 4});
  fine.born_of = IntervalId{1, 0, 4};
  p2->handle_app_msg(fine);
  EXPECT_EQ(p2->deliveries(), 1);
}

TEST(OrphanDetection, AnnouncementRollsBackDependentProcess) {
  TestHarness h(3);
  auto p2 = h.make_process(2, quiet_config());
  p2->start();
  h.tick(*p2);  // (0,2)
  // Acquire a dependency on (0,6)_1 at interval (0,3)_2.
  AppMsg dep = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  dep.tdv.set(1, Entry{0, 6});
  dep.born_of = IntervalId{1, 0, 6};
  p2->handle_app_msg(dep);
  h.tick(*p2);  // (0,4), still orphaned-to-be
  EXPECT_EQ(p2->current(), (Entry{0, 4}));
  // P1 announces incarnation 0 ended at 4 -> (0,6)_1 rolled back -> P2's
  // intervals (0,3) and (0,4) are orphans; P2 rolls back to (0,2) and
  // starts incarnation 1 at index 3.
  p2->handle_announcement(Announcement{1, Entry{0, 4}, true});
  EXPECT_EQ(p2->rollbacks(), 1);
  // The rollback restored (0,2), started incarnation 1 at index 3, and the
  // undone (non-orphan) filler was redelivered as (1,4).
  EXPECT_EQ(p2->current(), (Entry{1, 4}));
  EXPECT_FALSE(p2->tdv().at(1).has_value());
  // Theorem 1: the non-failed rolled-back process does NOT announce.
  EXPECT_TRUE(h.announcements.empty());
}

TEST(OrphanDetection, AnnounceAllRollbacksModeBroadcasts) {
  TestHarness h(3);
  ProtocolConfig cfg = quiet_config();
  cfg.announce_all_rollbacks = true;
  cfg.null_stable_entries = true;  // keep the improved tracking otherwise
  auto p2 = h.make_process(2, cfg);
  p2->start();
  AppMsg dep = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  dep.tdv.set(1, Entry{0, 6});
  dep.born_of = IntervalId{1, 0, 6};
  p2->handle_app_msg(dep);
  p2->handle_announcement(Announcement{1, Entry{0, 4}, true});
  ASSERT_EQ(h.announcements.size(), 1u);
  EXPECT_EQ(h.announcements[0].from, 2);
  EXPECT_FALSE(h.announcements[0].from_failure);
  EXPECT_EQ(h.announcements[0].ended, (Entry{0, 1}));
}

TEST(Rollback, NonOrphanUndoneMessagesAreRedelivered) {
  TestHarness h(4);
  auto p2 = h.make_process(2, quiet_config());
  p2->start();
  // (0,2): orphan-to-be dependency on (0,6)_1.
  AppMsg dep = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  dep.tdv.set(1, Entry{0, 6});
  dep.born_of = IntervalId{1, 0, 6};
  p2->handle_app_msg(dep);
  // (0,3): an innocent message from P3 — undone by the rollback but not an
  // orphan, so it must be redelivered afterwards.
  AppMsg innocent = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 7, 0, 0});
  innocent.tdv.set(3, Entry{0, 2});
  innocent.born_of = IntervalId{3, 0, 2};
  p2->handle_app_msg(innocent);
  EXPECT_EQ(p2->deliveries(), 2);
  p2->handle_announcement(Announcement{1, Entry{0, 4}, true});
  EXPECT_EQ(p2->rollbacks(), 1);
  // Redelivered in the new incarnation: deliveries counts it again.
  EXPECT_EQ(p2->deliveries(), 3);
  EXPECT_EQ(p2->current(), (Entry{1, 3}));
  ASSERT_TRUE(p2->tdv().at(3).has_value());
  EXPECT_EQ(*p2->tdv().at(3), (Entry{0, 2}));
}

TEST(CrashRestart, ReplaysStablePrefixAndAnnounces) {
  TestHarness h(2);
  auto p = h.make_process(0, quiet_config());
  p->start();
  h.tick(*p);  // (0,2)
  h.tick(*p);  // (0,3)
  p->force_flush();
  h.tick(*p);  // (0,4), volatile
  uint64_t hash_at_3_unavailable = 0;
  (void)hash_at_3_unavailable;
  p->crash();
  EXPECT_FALSE(p->alive());
  p->restart();
  EXPECT_TRUE(p->alive());
  // Recovered to (0,3); announced (0,3) as incarnation 0's end; new
  // incarnation starts at (1,4).
  ASSERT_EQ(h.announcements.size(), 1u);
  EXPECT_EQ(h.announcements[0].ended, (Entry{0, 3}));
  EXPECT_TRUE(h.announcements[0].from_failure);
  EXPECT_EQ(p->current(), (Entry{1, 4}));
  EXPECT_EQ(h.stats().counter("restart.replayed_msgs"), 2);
}

TEST(CrashRestart, ReplayRegeneratesSendsWithIdenticalIds) {
  TestHarness h(2);
  auto p = h.make_process(0, quiet_config());
  p->start();
  AppMsg original = h.command_send(*p, 1, /*tag=*/42);
  p->force_flush();
  p->crash();
  p->restart();
  // The replayed send is byte-identical (same id, same payload) so the
  // receiver would dedup it.
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].id, original.id);
  EXPECT_EQ(h.sent[0].payload, original.payload);
}

TEST(CrashRestart, VolatileDependentsBecomeOrphansElsewhere) {
  TestHarness h(3);
  auto p0 = h.make_process(0, quiet_config());
  auto p1 = h.make_process(1, quiet_config());
  p0->start();
  p1->start();
  AppMsg m = h.command_send(*p0, 1);  // from volatile (0,2)_0
  p1->handle_app_msg(m);
  h.tick(*p1);
  p0->crash();
  p0->restart();  // announces (0,1): interval (0,2)_0 was lost
  ASSERT_EQ(h.announcements.size(), 1u);
  EXPECT_EQ(h.announcements[0].ended, (Entry{0, 1}));
  p1->handle_announcement(h.announcements[0]);
  EXPECT_EQ(p1->rollbacks(), 1);
  // The orphan message was discarded; the innocent filler was redelivered
  // (2 original deliveries + 1 redelivery).
  EXPECT_EQ(p1->deliveries(), 3);
  EXPECT_EQ(h.stats().counter("msgs.discarded_orphan_recv"), 1);
}

TEST(CrashRestart, IncarnationNumbersAreNeverReused) {
  TestHarness h(3);
  auto p = h.make_process(0, quiet_config());
  p->start();
  // Roll back once (via an announcement-induced orphan) -> incarnation 1.
  AppMsg dep = h.env_msg(0, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  dep.tdv.set(1, Entry{0, 9});
  dep.born_of = IntervalId{1, 0, 9};
  p->handle_app_msg(dep);
  p->handle_announcement(Announcement{1, Entry{0, 4}, true});
  EXPECT_EQ(p->current().inc, 1);
  // Crash before anything of incarnation 1 reaches stable storage.
  p->crash();
  p->restart();
  // The failure announcement names incarnation 1 (the durable maximum),
  // and the new incarnation is 2 — never 1 again.
  ASSERT_FALSE(h.announcements.empty());
  EXPECT_EQ(h.announcements.back().ended.inc, 1);
  EXPECT_EQ(p->current().inc, 2);
}

TEST(CrashRestart, JournaledAnnouncementsSurviveFailure) {
  TestHarness h(3);
  auto p = h.make_process(0, quiet_config());
  p->start();
  p->handle_announcement(Announcement{2, Entry{0, 7}, true});
  p->crash();
  p->restart();
  // The incarnation end table was rebuilt from the journal: a late orphan
  // depending on (0,9)_2 is still rejected.
  AppMsg orphan = h.env_msg(0, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  orphan.tdv.set(2, Entry{0, 9});
  orphan.born_of = IntervalId{2, 0, 9};
  p->handle_app_msg(orphan);
  EXPECT_EQ(h.stats().counter("msgs.discarded_orphan_recv"), 1);
}

TEST(OutputCommit, HeldUntilAllEntriesNull) {
  TestHarness h(2);
  auto p = h.make_process(0, quiet_config());
  p->start();
  h.command_output(*p, 5);
  // The emitting interval (0,2)_0 is not stable yet.
  EXPECT_EQ(p->output_buffer_size(), 1u);
  EXPECT_TRUE(h.outputs.empty());
  p->force_flush();
  EXPECT_EQ(p->output_buffer_size(), 0u);
  ASSERT_EQ(h.outputs.size(), 1u);
  EXPECT_EQ(h.outputs[0].payload.b, 5);
  EXPECT_EQ(h.outputs[0].born_of, (IntervalId{0, 0, 2}));
}

TEST(OutputCommit, WaitsForRemoteStability) {
  TestHarness h(3);
  auto p0 = h.make_process(0, quiet_config());
  auto p1 = h.make_process(1, quiet_config());
  p0->start();
  p1->start();
  AppMsg m = h.command_send(*p0, 1);
  p1->handle_app_msg(m);
  h.command_output(*p1, 9);
  p1->force_flush();  // own interval stable, but P0's dependency remains
  EXPECT_EQ(p1->output_buffer_size(), 1u);
  p0->force_flush();
  p0->broadcast_progress();
  p1->handle_log_progress(h.progresses.back());
  EXPECT_EQ(p1->output_buffer_size(), 0u);
  ASSERT_EQ(h.outputs.size(), 1u);
}

TEST(Checkpoint, Corollary2NullsOwnEntry) {
  TestHarness h(2);
  ProtocolConfig cfg = quiet_config();
  cfg.checkpoint_interval_us = 0;  // manual only
  auto p = h.make_process(0, cfg);
  p->start();
  h.tick(*p);
  ASSERT_TRUE(p->tdv().at(0).has_value());
  p->force_flush();  // flush watermark also certifies the current interval
  EXPECT_FALSE(p->tdv().at(0).has_value());
}

TEST(StromYemini, DeliveryWaitsForPriorIncarnationAnnouncement) {
  TestHarness h(3);
  ProtocolConfig cfg = ProtocolConfig::strom_yemini();
  auto p2 = h.make_process(2, cfg);
  p2->start();
  // A message carrying (1,6)_1 arrives before the announcement ending
  // incarnation 0 of P1: SY delays even though P2 has no entry for P1.
  AppMsg m = h.env_msg(2, AppPayload{ScriptedApp::kNoop, 0, 0, 0, 0});
  m.tdv.set(1, Entry{1, 6});
  m.born_of = IntervalId{1, 1, 6};
  p2->handle_app_msg(m);
  EXPECT_EQ(p2->receive_buffer_size(), 1u);
  p2->handle_announcement(Announcement{1, Entry{0, 4}, true});
  EXPECT_EQ(p2->receive_buffer_size(), 0u);
  EXPECT_EQ(p2->deliveries(), 1);
}

TEST(StromYemini, FullVectorsNeverShrink) {
  TestHarness h(3);
  ProtocolConfig cfg = ProtocolConfig::strom_yemini();
  auto p0 = h.make_process(0, cfg);
  p0->start();
  AppMsg first = h.command_send(*p0, 1);
  EXPECT_EQ(first.tdv.non_null_count(), 1);
  // Without Theorem 2, entries stay after stability.
  p0->force_flush();
  AppMsg second = h.command_send(*p0, 1);
  EXPECT_EQ(second.tdv.non_null_count(), 1);
  EXPECT_EQ(*second.tdv.at(0), (Entry{0, 3}));
  EXPECT_GT(second.wire_bytes(false), second.wire_bytes(true));
}

}  // namespace
}  // namespace koptlog
