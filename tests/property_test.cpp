// Property sweeps: every combination of (workload, N, K, failure count,
// logging cadence, seed) must satisfy the paper's theorems, as checked by
// the ground-truth oracle after running to quiescence:
//   - no surviving orphan (Theorems 1/2),
//   - rollbacks are exact (nothing non-orphan is undone),
//   - entries are NULLed only when truly stable (Theorem 3),
//   - released messages carry <= K live entries, and every non-stable
//     dependency at release is covered by a live entry (Theorem 4),
//   - recovered state hashes match first-execution hashes (PWD model),
//   - committed outputs are never revoked.
#include <gtest/gtest.h>

#include <string>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/failure_injector.h"
#include "direct/direct_process.h"

namespace koptlog {
namespace {

struct SweepParam {
  const char* workload;
  int n;
  int k;  // -1 = unbounded (traditional optimistic)
  int failures;
  bool slow_logging;
  bool reliable;     // sender-based retransmission extension
  bool no_gc;        // garbage collection disabled
  bool coordinated;  // cluster-coordinated checkpoint rounds
  uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string k = p.k < 0 ? "N" : std::to_string(p.k);
  return std::string(p.workload) + "_n" + std::to_string(p.n) + "_k" + k +
         "_f" + std::to_string(p.failures) + (p.slow_logging ? "_slow" : "") +
         (p.reliable ? "_rel" : "") + (p.no_gc ? "_nogc" : "") +
         (p.coordinated ? "_coord" : "") + "_s" + std::to_string(p.seed);
}

class RecoverySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RecoverySweep, OracleVerifiesAllTheorems) {
  const SweepParam& param = GetParam();
  ClusterConfig cfg;
  cfg.n = param.n;
  cfg.seed = param.seed;
  cfg.enable_oracle = true;
  cfg.protocol.k = param.k < 0 ? ProtocolConfig::kUnboundedK : param.k;
  cfg.protocol.reliable_delivery = param.reliable;
  cfg.protocol.garbage_collect = !param.no_gc;
  cfg.protocol.coordinated_checkpoints = param.coordinated;
  if (param.slow_logging) {
    cfg.protocol.flush_interval_us = 25'000;
    cfg.protocol.notify_interval_us = 40'000;
    cfg.protocol.checkpoint_interval_us = 150'000;
  }

  Cluster::AppFactory factory;
  if (std::string(param.workload) == "uniform") {
    factory = make_uniform_app({.extra_send_denominator = 3, .output_every = 7});
  } else if (std::string(param.workload) == "pipeline") {
    factory = make_pipeline_app({.output_every = 2});
  } else {
    factory = make_client_server_app({.output_every = 3});
  }

  Cluster cluster(cfg, factory);
  cluster.start();

  constexpr SimTime kLoadEnd = 200'000;
  if (std::string(param.workload) == "uniform") {
    inject_uniform_load(cluster, 40, 1'000, kLoadEnd, /*ttl=*/7,
                        param.seed * 31 + 1);
  } else if (std::string(param.workload) == "pipeline") {
    inject_pipeline_load(cluster, 40, 1'000, kLoadEnd);
  } else {
    inject_client_requests(cluster, 40, 1'000, kLoadEnd, param.seed * 17 + 3);
  }

  if (param.failures > 0) {
    FailurePlan plan = FailurePlan::random(Rng(param.seed).fork("failures"),
                                           param.n, param.failures, 20'000,
                                           kLoadEnd + 50'000);
    apply_failure_plan(cluster, plan);
  }

  cluster.run_for(600'000);
  cluster.drain();

  Oracle::Report rep = cluster.oracle()->verify(/*strict_thm4=*/true);
  EXPECT_TRUE(rep.ok) << param_name({GetParam(), 0}) << "\n" << rep.summary();

  // Sanity: work actually happened.
  EXPECT_GT(cluster.stats().counter("msgs.delivered"), 40);
  if (param.failures == 0) {
    EXPECT_EQ(rep.lost, 0u);
    EXPECT_EQ(cluster.stats().counter("rollback.count"), 0);
  }
}

constexpr uint64_t kSeeds[] = {1, 2, 3};

std::vector<SweepParam> make_sweep() {
  std::vector<SweepParam> out;
  for (const char* wl : {"uniform", "pipeline", "clientserver"}) {
    for (int n : {3, 6}) {
      for (int k : {0, 1, 2, -1}) {
        for (int failures : {0, 1, 3}) {
          for (uint64_t seed : kSeeds) {
            // The extension axes (slow logging cadence, reliable
            // delivery, GC off) run on one representative slice each to
            // bound the suite's size; they are orthogonal to the others.
            out.push_back(SweepParam{wl, n, k, failures, false, false,
                                     false, false, seed});
            if (k == -1 && failures == 3) {
              out.push_back(SweepParam{wl, n, k, failures, true, false, false,
                                       false, seed});
              out.push_back(SweepParam{wl, n, k, failures, false, true, false,
                                       false, seed});
              out.push_back(SweepParam{wl, n, k, failures, false, false, true,
                                       false, seed});
              out.push_back(SweepParam{wl, n, k, failures, false, false,
                                       false, true, seed});
            }
            if (k == 1 && failures == 3) {
              out.push_back(SweepParam{wl, n, k, failures, false, true, false,
                                       false, seed});
              out.push_back(SweepParam{wl, n, k, failures, false, false,
                                       false, true, seed});
            }
          }
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllConfigurations, RecoverySweep,
                         ::testing::ValuesIn(make_sweep()), param_name);

// The baselines must satisfy the same global properties.
struct BaselineParam {
  const char* name;
  int failures;
  uint64_t seed;
};

std::string baseline_name(const ::testing::TestParamInfo<BaselineParam>& info) {
  return std::string(info.param.name) + "_f" +
         std::to_string(info.param.failures) + "_s" +
         std::to_string(info.param.seed);
}

class BaselineSweep : public ::testing::TestWithParam<BaselineParam> {};

TEST_P(BaselineSweep, OracleVerifies) {
  const BaselineParam& param = GetParam();
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.seed = param.seed;
  cfg.enable_oracle = true;
  if (std::string(param.name) == "pessimistic") {
    cfg.protocol = ProtocolConfig::pessimistic();
  } else if (std::string(param.name) == "strom_yemini") {
    cfg.protocol = ProtocolConfig::strom_yemini();
    cfg.fifo = true;  // SY assumes FIFO channels
  } else {            // full_tdv: improved protocol minus Theorem 2
    cfg.protocol.null_stable_entries = false;
  }

  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 40, 1'000, 200'000, 7, param.seed + 5);
  if (param.failures > 0) {
    apply_failure_plan(cluster,
                       FailurePlan::random(Rng(param.seed).fork("f"), cfg.n,
                                           param.failures, 20'000, 250'000));
  }
  cluster.run_for(600'000);
  cluster.drain();

  Oracle::Report rep = cluster.oracle()->verify(/*strict_thm4=*/true);
  EXPECT_TRUE(rep.ok) << rep.summary();
  if (std::string(param.name) == "pessimistic") {
    EXPECT_EQ(cluster.stats().counter("rollback.count"), 0);
    EXPECT_EQ(rep.lost, 0u);
  }
}

std::vector<BaselineParam> make_baseline_sweep() {
  std::vector<BaselineParam> out;
  for (const char* name : {"pessimistic", "strom_yemini", "full_tdv"}) {
    for (int failures : {0, 2, 4}) {
      for (uint64_t seed : kSeeds) out.push_back({name, failures, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Baselines, BaselineSweep,
                         ::testing::ValuesIn(make_baseline_sweep()),
                         baseline_name);

// The direct-dependency-tracking engine must satisfy the same global
// properties (it shares the oracle; Theorem-4 strict checking is vacuous
// for it since it releases nothing under a K contract).
struct DirectParam {
  const char* workload;
  int n;
  int failures;
  uint64_t seed;
};

std::string direct_name(const ::testing::TestParamInfo<DirectParam>& info) {
  return std::string(info.param.workload) + "_n" +
         std::to_string(info.param.n) + "_f" +
         std::to_string(info.param.failures) + "_s" +
         std::to_string(info.param.seed);
}

class DirectSweep : public ::testing::TestWithParam<DirectParam> {};

TEST_P(DirectSweep, OracleVerifies) {
  const DirectParam& param = GetParam();
  ClusterConfig cfg;
  cfg.n = param.n;
  cfg.seed = param.seed;
  cfg.enable_oracle = true;
  Cluster cluster(cfg,
                  std::string(param.workload) == "uniform"
                      ? make_uniform_app({})
                      : std::string(param.workload) == "pipeline"
                            ? make_pipeline_app({})
                            : make_client_server_app({}),
                  DirectProcess::factory());
  cluster.start();
  if (std::string(param.workload) == "uniform") {
    inject_uniform_load(cluster, 40, 1'000, 200'000, 7, param.seed * 37 + 1);
  } else if (std::string(param.workload) == "pipeline") {
    inject_pipeline_load(cluster, 40, 1'000, 200'000);
  } else {
    inject_client_requests(cluster, 40, 1'000, 200'000, param.seed * 41 + 3);
  }
  if (param.failures > 0) {
    apply_failure_plan(cluster,
                       FailurePlan::random(Rng(param.seed).fork("direct"),
                                           param.n, param.failures, 20'000,
                                           250'000));
  }
  cluster.run_for(800'000);
  cluster.drain();
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
  EXPECT_GT(cluster.stats().counter("msgs.delivered"), 40);
  if (param.failures == 0) {
    EXPECT_EQ(rep.lost, 0u);
    EXPECT_EQ(cluster.stats().counter("rollback.count"), 0);
  }
}

std::vector<DirectParam> make_direct_sweep() {
  std::vector<DirectParam> out;
  for (const char* wl : {"uniform", "pipeline", "clientserver"}) {
    for (int n : {3, 6}) {
      for (int failures : {0, 1, 3}) {
        for (uint64_t seed : kSeeds) out.push_back({wl, n, failures, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(DirectEngineSweep, DirectSweep,
                         ::testing::ValuesIn(make_direct_sweep()),
                         direct_name);

}  // namespace
}  // namespace koptlog
