// ReceiveBuffer unit tests: duplicate suppression by replay-stable id,
// the restart-on-removal drain loop (a delivery can make earlier-buffered
// messages deliverable), orphan discard, and the crash-clears-everything
// contract for the delivered/acked bookkeeping.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runtime/receive_buffer.h"
#include "runtime_test_util.h"

namespace koptlog {
namespace {

TEST(ReceiveBufferTest, SeenCoversBufferedAndDelivered) {
  RuntimeFixture fx;
  ReceiveBuffer rb;
  AppMsg m = fx.msg(1, 1);

  EXPECT_FALSE(rb.seen(m.id));
  rb.push(m, 0);
  EXPECT_TRUE(rb.buffered(m.id));
  EXPECT_TRUE(rb.seen(m.id));

  rb.mark_delivered(MsgId{2, 9});
  EXPECT_TRUE(rb.seen(MsgId{2, 9}));
  EXPECT_FALSE(rb.buffered(MsgId{2, 9}));
}

TEST(ReceiveBufferTest, DrainRestartsScanAfterEachDelivery) {
  RuntimeFixture fx;
  ReceiveBuffer rb;
  // m1 buffered first but only deliverable once m2 has been delivered —
  // the drain must restart its scan after removing m2.
  AppMsg m1 = fx.msg(1, 1);
  AppMsg m2 = fx.msg(2, 2);
  rb.push(m1, 0);
  rb.push(m2, 0);

  std::set<SeqNo> delivered;
  std::vector<SeqNo> order;
  rb.drain_deliverable(
      [] { return true; }, [](const AppMsg&) { return false; },
      [](const AppMsg&) {},
      [&](const AppMsg& m) {
        return m.id.seq == 2 || delivered.count(2) != 0;
      },
      [&](ReceiveBuffer::Buffered&& b) {
        delivered.insert(b.msg.id.seq);
        order.push_back(b.msg.id.seq);
      });

  EXPECT_EQ(order, (std::vector<SeqNo>{2, 1}));
  EXPECT_TRUE(rb.empty());
}

TEST(ReceiveBufferTest, DrainDiscardsOrphansAndStopsWhenInactive) {
  RuntimeFixture fx;
  ReceiveBuffer rb;
  rb.push(fx.msg(1, 1), 0);  // orphan
  rb.push(fx.msg(2, 2), 0);  // deliverable, but delivery kills the process

  std::vector<SeqNo> discarded;
  std::vector<SeqNo> delivered;
  bool active = true;
  rb.drain_deliverable(
      [&] { return active; },
      [](const AppMsg& m) { return m.id.seq == 1; },
      [&](const AppMsg& m) { discarded.push_back(m.id.seq); },
      [](const AppMsg&) { return true; },
      [&](ReceiveBuffer::Buffered&& b) {
        delivered.push_back(b.msg.id.seq);
        active = false;  // e.g. the delivery triggered a rollback
      });

  EXPECT_EQ(discarded, (std::vector<SeqNo>{1}));
  EXPECT_EQ(delivered, (std::vector<SeqNo>{2}));
}

TEST(ReceiveBufferTest, ClearResetsAllVolatileBookkeeping) {
  RuntimeFixture fx;
  ReceiveBuffer rb;
  rb.push(fx.msg(1, 1), 0);
  rb.mark_delivered(MsgId{1, 1});
  rb.mark_acked(MsgId{1, 1});
  rb.set_acked_upto(5);

  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.delivered(MsgId{1, 1}));
  EXPECT_FALSE(rb.acked(MsgId{1, 1}));
  EXPECT_EQ(rb.acked_upto(), 0u);
}

}  // namespace
}  // namespace koptlog
