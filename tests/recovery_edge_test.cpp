// Recovery edge cases on the full cluster: repeated failures of the same
// process, near-simultaneous failures, failure storms, rollback cascades
// across a pipeline, and behaviour right at the drain boundary.
#include <gtest/gtest.h>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/failure_injector.h"

namespace koptlog {
namespace {

ClusterConfig cfg_with(int n, uint64_t seed) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.enable_oracle = true;
  return cfg;
}

void verify(Cluster& cluster) {
  Oracle::Report rep = cluster.oracle()->verify(/*strict_thm4=*/true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(RecoveryEdge, RepeatedFailuresOfSameProcess) {
  Cluster cluster(cfg_with(4, 21), make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 60, 1'000, 400'000, 8, 13);
  for (int i = 0; i < 5; ++i) {
    cluster.fail_at(60'000 + i * 70'000, 1);
  }
  cluster.run_for(900'000);
  cluster.drain();
  EXPECT_EQ(cluster.stats().counter("crash.count"),
            cluster.stats().counter("restart.count"));
  // Every failure of P1 increments its incarnation at least once.
  EXPECT_GE(cluster.engine(1).current().inc, 5);
  verify(cluster);
}

TEST(RecoveryEdge, NearSimultaneousFailuresOfAllProcesses) {
  Cluster cluster(cfg_with(4, 22), make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 50, 1'000, 300'000, 8, 17);
  for (ProcessId pid = 0; pid < 4; ++pid) {
    cluster.fail_at(150'000 + pid * 500, pid);  // within one restart window
  }
  cluster.run_for(900'000);
  cluster.drain();
  EXPECT_EQ(cluster.stats().counter("crash.count"), 4);
  verify(cluster);
}

TEST(RecoveryEdge, FailureStormManySmallCrashes) {
  Cluster cluster(cfg_with(6, 23), make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 80, 1'000, 600'000, 6, 19);
  apply_failure_plan(cluster, FailurePlan::random(Rng(23).fork("storm"), 6, 12,
                                                  30'000, 700'000));
  cluster.run_for(1'500'000);
  cluster.drain();
  verify(cluster);
}

TEST(RecoveryEdge, PipelineCascadeRollsBackDownstreamOnly) {
  // A pipeline makes rollback propagation directional: a failure at stage s
  // can orphan stages > s (they consumed its outputs) but never stages < s.
  ClusterConfig cfg = cfg_with(5, 24);
  // Slow logging maximizes the volatile window so the crash creates orphans.
  cfg.protocol.flush_interval_us = 60'000;
  cfg.protocol.notify_interval_us = 80'000;
  cfg.protocol.checkpoint_interval_us = 500'000;
  Cluster cluster(cfg, make_pipeline_app({}));
  cluster.start();
  inject_pipeline_load(cluster, 40, 1'000, 150'000);
  cluster.fail_at(100'000, 2);
  cluster.run_for(900'000);
  cluster.drain();
  EXPECT_EQ(cluster.engine(0).rollbacks(), 0);
  EXPECT_EQ(cluster.engine(1).rollbacks(), 0);
  verify(cluster);
}

TEST(RecoveryEdge, CrashBeforeAnyCheckpointIntervalElapsed) {
  ClusterConfig cfg = cfg_with(3, 25);
  cfg.protocol.checkpoint_interval_us = 10'000'000;  // effectively never
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 30, 1'000, 100'000, 6, 29);
  cluster.fail_at(50'000, 0);  // only the initial checkpoint exists
  cluster.run_for(600'000);
  cluster.drain();
  verify(cluster);
}

TEST(RecoveryEdge, CrashDuringAnotherProcessRecoveryWindow) {
  ClusterConfig cfg = cfg_with(4, 26);
  cfg.protocol.restart_delay_us = 50'000;  // long recovery window
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 50, 1'000, 300'000, 7, 31);
  cluster.fail_at(100'000, 0);
  cluster.fail_at(110'000, 1);  // while P0 is still down
  cluster.run_for(900'000);
  cluster.drain();
  EXPECT_EQ(cluster.stats().counter("crash.count"), 2);
  verify(cluster);
}

TEST(RecoveryEdge, FailureInjectionOnDownProcessIsSkipped) {
  ClusterConfig cfg = cfg_with(3, 27);
  cfg.protocol.restart_delay_us = 100'000;
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 20, 1'000, 80'000, 5, 37);
  cluster.fail_at(50'000, 1);
  cluster.fail_at(60'000, 1);  // P1 still down: skipped, not queued
  cluster.run_for(600'000);
  cluster.drain();
  EXPECT_EQ(cluster.stats().counter("crash.count"), 1);
  EXPECT_EQ(cluster.stats().counter("crash.skipped_already_down"), 1);
  verify(cluster);
}

TEST(RecoveryEdge, ZeroOptimisticSurvivesFailureStormWithoutLostOutputs) {
  ClusterConfig cfg = cfg_with(4, 28);
  cfg.protocol.k = 0;
  Cluster cluster(cfg, make_client_server_app({}));
  cluster.start();
  inject_client_requests(cluster, 40, 1'000, 300'000, 41);
  apply_failure_plan(cluster, FailurePlan::random(Rng(28).fork("storm"), 4, 6,
                                                  30'000, 400'000));
  cluster.run_for(1'200'000);
  cluster.drain();
  // K=0: released messages can never be revoked by any failure — so no
  // released message was ever discarded as an orphan at a receiver.
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
  const Histogram& risk = cluster.stats().histogram("send.risk");
  if (risk.count() > 0) {
    EXPECT_EQ(risk.max(), 0.0);
  }
  verify(cluster);
}

TEST(RecoveryEdge, FifoAndNonFifoBothVerify) {
  for (bool fifo : {false, true}) {
    ClusterConfig cfg = cfg_with(4, 30 + (fifo ? 1 : 0));
    cfg.fifo = fifo;
    Cluster cluster(cfg, make_uniform_app({}));
    cluster.start();
    inject_uniform_load(cluster, 40, 1'000, 200'000, 7, 43);
    cluster.fail_at(90'000, 2);
    cluster.run_for(700'000);
    cluster.drain();
    verify(cluster);
  }
}

TEST(RecoveryEdge, HighJitterExtremeReordering) {
  ClusterConfig cfg = cfg_with(4, 33);
  cfg.data_latency.jitter_us = 30'000;  // latencies span 30ms
  cfg.data_latency.jitter = Jitter::kExponential;
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 40, 1'000, 200'000, 7, 47);
  cluster.fail_at(100'000, 3);
  cluster.run_for(900'000);
  cluster.drain();
  verify(cluster);
}

TEST(RecoveryEdge, TraceSinkObservesProtocolEvents) {
  ClusterConfig cfg = cfg_with(3, 34);
  Cluster cluster(cfg, make_uniform_app({}));
  std::string log;
  cluster.set_trace(Tracer::string_sink(log), TraceLevel::kDebug);
  cluster.start();
  inject_uniform_load(cluster, 10, 1'000, 50'000, 5, 51);
  cluster.fail_at(30'000, 0);
  cluster.run_for(400'000);
  cluster.drain();
  EXPECT_NE(log.find("CRASH"), std::string::npos);
  EXPECT_NE(log.find("RESTART complete"), std::string::npos);
  EXPECT_NE(log.find("deliver"), std::string::npos);
}

}  // namespace
}  // namespace koptlog
