// ReliableChannel unit tests: acks are deferred until the delivery's log
// record reaches stable storage (so a receiver crash can never lose a
// message whose sender already stopped retransmitting), already-stable
// duplicates are re-acked, and the sender side retransmits only
// non-orphans.
#include <gtest/gtest.h>

#include "runtime/receive_buffer.h"
#include "runtime/reliable_channel.h"
#include "runtime_test_util.h"
#include "storage/message_log.h"

namespace koptlog {
namespace {

class ReliableChannelTest : public ::testing::Test {
 protected:
  void log_delivery(const AppMsg& m, Sii sii) {
    fx.storage.log().append(LogRecord{m, IntervalId{0, 1, sii}});
  }

  RuntimeFixture fx;
  ReceiveBuffer recv;
  ReliableChannel ch{fx.rt, /*enabled=*/true, recv};
};

TEST_F(ReliableChannelTest, AcksAreDeferredToStability) {
  AppMsg m1 = fx.msg(1, 1);
  AppMsg m2 = fx.msg(2, 2);
  log_delivery(m1, 1);
  log_delivery(m2, 2);

  // Both records are still volatile: nothing may be acknowledged yet.
  ch.ack_stable_records();
  EXPECT_TRUE(fx.api.acks.empty());
  EXPECT_FALSE(recv.acked(m1.id));

  // The flush lands: both deliveries become stable and are acked in log
  // order, exactly once.
  fx.storage.log().flush_all();
  ch.ack_stable_records();
  ASSERT_EQ(fx.api.acks.size(), 2u);
  EXPECT_EQ(std::get<1>(fx.api.acks[0]), 1);  // ack to m1's sender
  EXPECT_EQ(std::get<2>(fx.api.acks[0]), m1.id);
  EXPECT_EQ(std::get<1>(fx.api.acks[1]), 2);
  EXPECT_TRUE(recv.acked(m1.id));
  EXPECT_TRUE(recv.acked(m2.id));
  EXPECT_EQ(recv.acked_upto(), 2u);

  // Re-scanning finds nothing new.
  ch.ack_stable_records();
  EXPECT_EQ(fx.api.acks.size(), 2u);
}

TEST_F(ReliableChannelTest, EnvironmentDeliveriesAreNeverAcked) {
  AppMsg env = fx.msg(kEnvironment, 1);
  log_delivery(env, 1);
  fx.storage.log().flush_all();
  ch.ack_stable_records();
  EXPECT_TRUE(fx.api.acks.empty());
  EXPECT_EQ(recv.acked_upto(), 1u);
}

TEST_F(ReliableChannelTest, StableRecordsAreUnparkedAsTheyAreAcked) {
  AppMsg m = fx.msg(1, 1);
  fx.storage.park(m);
  log_delivery(m, 1);
  fx.storage.log().flush_all();
  ch.ack_stable_records();
  EXPECT_TRUE(fx.storage.parked().empty());
}

TEST_F(ReliableChannelTest, ReacksOnlyAlreadyStableDuplicates) {
  AppMsg m = fx.msg(1, 1);

  // Not yet stable: a duplicate arrival must NOT be acked — the pending
  // stability will ack, and until then the sender must keep the message.
  ch.reack_duplicate(m);
  EXPECT_TRUE(fx.api.acks.empty());

  log_delivery(m, 1);
  fx.storage.log().flush_all();
  ch.ack_stable_records();
  ASSERT_EQ(fx.api.acks.size(), 1u);

  // Stable now: the duplicate is re-acked in case the first ack was lost.
  ch.reack_duplicate(m);
  ASSERT_EQ(fx.api.acks.size(), 2u);
  EXPECT_EQ(std::get<2>(fx.api.acks[1]), m.id);
}

TEST_F(ReliableChannelTest, RetransmitDropsOrphansAndResendsTheRest) {
  AppMsg keep = fx.msg(0, 1);
  AppMsg orphan = fx.msg(0, 2);
  ch.track(keep);
  ch.track(orphan);
  ASSERT_EQ(ch.unacked_count(), 2u);

  ch.retransmit([&](const AppMsg& m) { return m.id == orphan.id; });
  ASSERT_EQ(fx.api.sent.size(), 1u);
  EXPECT_EQ(fx.api.sent[0].id, keep.id);
  EXPECT_EQ(ch.unacked_count(), 1u);

  ch.on_ack(keep.id);
  EXPECT_TRUE(ch.empty());
}

TEST_F(ReliableChannelTest, DisabledChannelStillUnparksButNeverAcks) {
  ReliableChannel off(fx.rt, /*enabled=*/false, recv);
  AppMsg m = fx.msg(1, 1);
  fx.storage.park(m);
  log_delivery(m, 1);
  fx.storage.log().flush_all();

  off.ack_stable_records();
  EXPECT_TRUE(fx.storage.parked().empty());
  EXPECT_TRUE(fx.api.acks.empty());

  off.track(m);
  EXPECT_EQ(off.unacked_count(), 0u);
}

}  // namespace
}  // namespace koptlog
