// ReplayEngine unit tests: the epoch guard that voids async-flush
// completions raced by a crash, durable incarnation bumps, announcement
// journaling/dedup, the replay loop, and checkpoint-driven garbage
// collection.
#include <gtest/gtest.h>

#include <vector>

#include "core/config.h"
#include "runtime/replay_engine.h"
#include "runtime_test_util.h"

namespace koptlog {
namespace {

class ReplayEngineTest : public ::testing::Test {
 protected:
  void log_record(SeqNo seq, Sii sii) {
    fx.storage.log().append(LogRecord{fx.msg(1, seq), IntervalId{0, 1, sii}});
  }

  RuntimeFixture fx;
  ProtocolConfig cfg;
  bool alive = true;
  ReplayEngine re{fx.rt, cfg, [this] { return alive; }};
};

TEST_F(ReplayEngineTest, AsyncFlushCompletes) {
  log_record(1, 1);
  log_record(2, 2);

  size_t finished_upto = 0;
  Entry watermark{};
  re.start_async_flush([&](size_t upto, Entry w, size_t) {
    finished_upto = upto;
    watermark = w;
    re.complete_flush(upto);
  });
  EXPECT_EQ(fx.storage.counters().async_flushes, 1);
  fx.api.sim().run();

  EXPECT_EQ(finished_upto, 2u);
  EXPECT_EQ(watermark, (Entry{1, 2}));
  EXPECT_EQ(fx.storage.log().stable_count(), 2u);
  EXPECT_EQ(fx.storage.counters().records_flushed, 2);
}

TEST_F(ReplayEngineTest, CrashEpochDiscardsStaleFlushCompletion) {
  log_record(1, 1);
  log_record(2, 2);

  bool finished = false;
  re.start_async_flush([&](size_t, Entry, size_t) { finished = true; });

  // The crash bumps the epoch and loses the volatile suffix before the
  // in-flight completion fires; the completion must become a no-op.
  uint64_t before = re.epoch();
  std::vector<LogRecord> lost = re.on_crash();
  EXPECT_EQ(re.epoch(), before + 1);
  EXPECT_EQ(lost.size(), 2u);
  alive = true;  // even a fast restart must not resurrect the completion

  fx.api.sim().run();
  EXPECT_FALSE(finished);
  EXPECT_EQ(fx.storage.log().stable_count(), 0u);
}

TEST_F(ReplayEngineTest, DeadProcessDiscardsFlushCompletion) {
  log_record(1, 1);
  bool finished = false;
  re.start_async_flush([&](size_t, Entry, size_t) { finished = true; });
  alive = false;
  fx.api.sim().run();
  EXPECT_FALSE(finished);
}

TEST_F(ReplayEngineTest, FlushOfEmptyVolatileSuffixIsANoOp) {
  re.start_async_flush([](size_t, Entry, size_t) { FAIL() << "nothing to flush"; });
  EXPECT_EQ(fx.storage.counters().async_flushes, 0);
  fx.api.sim().run();
}

TEST_F(ReplayEngineTest, IncarnationBumpIsDurableAndMonotonic) {
  EXPECT_EQ(re.bump_incarnation_durably(), 1);
  EXPECT_EQ(re.bump_incarnation_durably(), 2);
  EXPECT_EQ(fx.storage.durable_max_inc(), 2);
  // Each bump is a synchronous journal write.
  EXPECT_EQ(fx.storage.counters().sync_writes, 2);
}

TEST_F(ReplayEngineTest, RemoteAnnouncementsAreJournaledAndDeduped) {
  Announcement a{1, Entry{1, 5}, true};
  EXPECT_TRUE(re.note_remote_announcement(a));
  EXPECT_FALSE(re.note_remote_announcement(a));
  EXPECT_EQ(fx.storage.announcement_journal().size(), 1u);

  // A crash clears the volatile processed set; the journal survives and
  // restart rebuilds the set from it.
  re.on_crash();
  std::vector<Announcement> replayed;
  re.restore_announcements(
      [&](const Announcement& x) { replayed.push_back(x); });
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].from, 1);
  EXPECT_FALSE(re.note_remote_announcement(a));
}

TEST_F(ReplayEngineTest, ReplayStopsAtPredicateAndChargesEachRecord) {
  log_record(1, 1);
  log_record(2, 2);
  log_record(3, 3);

  std::vector<SeqNo> applied;
  size_t pos = re.replay(
      0, 3, [](const LogRecord& r) { return r.started.sii == 3; },
      [&](const LogRecord& r) { applied.push_back(r.msg.id.seq); });
  EXPECT_EQ(pos, 2u);
  EXPECT_EQ(applied, (std::vector<SeqNo>{1, 2}));
  EXPECT_EQ(fx.api.stats().counter("restart.replayed_msgs"), 2);
}

TEST_F(ReplayEngineTest, GarbageCollectKeepsTheNewestSafeCheckpoint) {
  log_record(1, 1);
  log_record(2, 2);
  fx.storage.log().flush_all();
  re.take_checkpoint([&](Checkpoint& cp) {
    cp.at = Entry{1, 2};
    cp.log_pos = 2;
  });
  log_record(3, 3);
  fx.storage.log().flush_all();

  re.garbage_collect([](const Checkpoint&) { return true; });
  // Records before the safe checkpoint's log position are reclaimed; the
  // checkpoint itself and later records stay.
  EXPECT_EQ(fx.storage.log().base(), 2u);
  EXPECT_EQ(fx.storage.log().retained_count(), 1u);
  EXPECT_EQ(fx.storage.checkpoints().size(), 1u);
  EXPECT_EQ(fx.api.stats().counter("gc.records_reclaimed"), 2);
}

}  // namespace
}  // namespace koptlog
