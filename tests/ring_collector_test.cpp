// Ring recorder + collector under real concurrency (runs in the `threaded`
// ctest label so scripts/sanitize_tests.sh exercises it under TSan):
//  * raw SPSC stress — one producer hammering a small ring, one consumer
//    draining with randomized batch sizes and pacing; nothing may be lost
//    unaccounted, retained seqs stay strictly increasing, occupancy stays
//    bounded;
//  * EventCollector over a multi-ring Recording with one producer thread
//    per ring and randomized production bursts;
//  * a whole ThreadedCluster multi-failure run in ring mode with the live
//    auditor attached — the end state the tentpole promises: bounded
//    recorder memory and a green online audit.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "app/workloads.h"
#include "common/rng.h"
#include "core/failure_injector.h"
#include "exec/threaded_cluster.h"
#include "obs/collector.h"
#include "obs/event_sink.h"
#include "obs/live_audit.h"
#include "obs/ring_recorder.h"

namespace koptlog {
namespace {

constexpr double kFastScale = 0.02;

ProtocolEvent make_event(SimTime t) {
  ProtocolEvent e;
  e.kind = EventKind::kSend;
  e.t = t;
  e.at = Entry{0, 1};
  e.msg = MsgId{0, (SeqNo)t};
  return e;
}

TEST(RingCollectorStress, SpscRandomizedDrainPacingLosesNothingUnaccounted) {
  RingRecorder ring(/*pid=*/0, /*capacity=*/64);
  constexpr int kEvents = 200'000;

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (int i = 0; i < kEvents; ++i) ring.record(make_event(i));
    done.store(true, std::memory_order_release);
  });

  Rng rng(0xC011EC7);
  uint64_t drained = 0;
  uint64_t dropped_marked = 0;
  int64_t last_seq = -1;
  auto fn = [&](const ProtocolEvent& e) {
    ASSERT_GT((int64_t)e.seq, last_seq) << "seq order violated";
    last_seq = (int64_t)e.seq;
    if (e.kind == EventKind::kRecorderDrop) {
      dropped_marked += (uint64_t)e.undone;
    } else {
      ++drained;
    }
  };
  while (true) {
    // Randomized pacing: vary the batch size and occasionally stall the
    // consumer so the producer overflows the ring.
    size_t batch = 1 + (size_t)rng.next_below(64);
    size_t got = ring.drain(batch, fn);
    if (got == 0 && done.load(std::memory_order_acquire) &&
        ring.occupancy() == 0) {
      break;
    }
    if (rng.next_below(10) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
  producer.join();
  while (ring.drain(64, fn) > 0) {
  }

  // Conservation: every produced event was either delivered to the
  // consumer or counted dropped, and the drained drop markers never claim
  // more than the true drop count (a final run of drops may go unmarked if
  // the producer stops before space for the marker opens up).
  EXPECT_EQ(drained + ring.dropped(), (uint64_t)kEvents);
  EXPECT_GT(ring.dropped(), 0u) << "stress never overflowed the ring";
  EXPECT_LE(dropped_marked, ring.dropped());
  EXPECT_LE(ring.max_occupancy(), ring.capacity());
  EXPECT_GT(drained, 0u);
}

TEST(RingCollectorStress, CollectorOverManyProducersKeepsPerProcessOrder) {
  constexpr int kN = 4;
  constexpr int kPerProducer = 50'000;
  RecordingOptions opt;
  opt.mode = RecordMode::kRing;
  opt.ring_capacity = 128;
  Recording rec(kN, opt);

  struct OrderSink final : EventSink {
    std::vector<int64_t> last_seq = std::vector<int64_t>(kN, -1);
    std::vector<uint64_t> events = std::vector<uint64_t>(kN, 0);
    uint64_t marker_events = 0;
    bool order_ok = true;
    void on_event(const ProtocolEvent& e) override {
      if ((int64_t)e.seq <= last_seq[(size_t)e.pid]) order_ok = false;
      last_seq[(size_t)e.pid] = (int64_t)e.seq;
      if (e.kind == EventKind::kRecorderDrop) {
        ++marker_events;
      } else {
        ++events[(size_t)e.pid];
      }
    }
  } sink;

  EventCollector::Options copt;
  copt.batch = 32;  // small batches force many round-robin passes
  copt.idle_sleep_us = 20;
  EventCollector collector(rec, {&sink}, copt);
  collector.start();

  std::vector<std::thread> producers;
  for (int p = 0; p < kN; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(0xFEED + (uint64_t)p);
      for (int i = 0; i < kPerProducer; ++i) {
        rec.recorder((ProcessId)p).record(make_event(i));
        // Randomized bursts: occasionally let the collector catch up.
        if (rng.next_below(256) == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(30));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  collector.stop();

  EXPECT_TRUE(sink.order_ok);
  for (int p = 0; p < kN; ++p) {
    // Conservation per ring: consumed + dropped == produced.
    EXPECT_EQ(sink.events[(size_t)p] + rec.ring((ProcessId)p)->dropped(),
              (uint64_t)kPerProducer)
        << "pid " << p;
    EXPECT_LE(rec.ring((ProcessId)p)->max_occupancy(),
              rec.ring((ProcessId)p)->capacity());
  }
  uint64_t total_events = 0;
  for (uint64_t v : sink.events) total_events += v;
  // Every drained slot (real events + gap markers) was counted exactly once.
  EXPECT_EQ(collector.events_collected(), total_events + sink.marker_events);
}

TEST(RingCollectorStress, ThreadedMultiFailureRunStaysBoundedAndAuditsGreen) {
  ClusterConfig cfg;
  cfg.n = 8;
  cfg.seed = 77;
  cfg.protocol.k = 2;
  cfg.record_events = true;
  cfg.recording.mode = RecordMode::kRing;
  cfg.recording.ring_capacity = 1 << 14;  // ample: expect zero drops
  ThreadedOptions opt;
  opt.shards = 4;
  opt.time_scale = kFastScale;
  ThreadedCluster cluster(cfg, opt, make_uniform_app({}));

  LiveAudit audit(cfg.n);
  LiveAuditSink audit_sink(audit, /*announce=*/false);
  MetricsSnapshotSink metrics("");
  EventCollector collector(*cluster.recording_mut(), {&audit_sink, &metrics});
  collector.start();

  cluster.start();
  const SimTime load_end = 400'000;
  inject_uniform_load(cluster, 220, 1'000, load_end, /*ttl=*/6, cfg.seed + 1);
  apply_failure_plan(cluster,
                     FailurePlan::random(Rng(cfg.seed).fork("fail"), cfg.n, 3,
                                         load_end / 10, load_end));
  cluster.run_for(load_end);
  cluster.drain();
  cluster.shutdown();
  collector.stop();

  EXPECT_TRUE(audit.ok()) << audit.first_violation();
  AuditReport rep = audit.report();
  EXPECT_GT(rep.events, 100u);
  EXPECT_GT(rep.commits_checked, 0u);
  EXPECT_EQ(rep.dropped_events, 0u);
  EXPECT_EQ((uint64_t)rep.events, collector.events_collected());
  // Bounded memory: every ring stayed within its capacity.
  for (int p = 0; p < cfg.n; ++p) {
    RingRecorder* ring = cluster.recording_mut()->ring((ProcessId)p);
    ASSERT_NE(ring, nullptr);
    EXPECT_LE(ring->max_occupancy(), ring->capacity());
    EXPECT_EQ(ring->dropped(), 0u);
  }
  // The stream-derived metrics saw the run's phases.
  EXPECT_GT(metrics.stats().counter("obs.events_total"), 0);
}

}  // namespace
}  // namespace koptlog
