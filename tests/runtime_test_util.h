// Shared fixture for the src/runtime component unit tests: a ManualHarness
// ClusterApi (captures routed messages, acks and outputs; draining() is
// true so nothing re-arms timers) plus the executor/storage pair that a
// RuntimeServices context needs. Costs default to StorageCosts{} — tests
// that want synchronous visibility drive the simulator explicitly.
#pragma once

#include "core/manual.h"
#include "runtime/runtime_services.h"
#include "sim/executor.h"
#include "storage/stable_storage.h"

namespace koptlog {

struct RuntimeFixture {
  explicit RuntimeFixture(int n = 4, StorageCosts costs = StorageCosts{})
      : api(n),
        exec(api.sim()),
        storage(costs, make_storage_backend(StorageOptions{}, costs, 0, n,
                                            api.sim(), nullptr)),
        rt{0, n, api, exec, storage} {}

  /// An application message from `from` to P0 carrying an all-NULL size-n
  /// vector; seq doubles as the sender interval index.
  AppMsg msg(ProcessId from, SeqNo seq) {
    AppMsg m;
    m.id = MsgId{from, seq};
    m.from = from;
    m.to = 0;
    m.tdv = DepVector(rt.n);
    m.born_of = IntervalId{from, 1, seq};
    m.sent_at = api.sim().now();
    return m;
  }

  ManualHarness api;
  Executor exec;
  StableStorage storage;
  RuntimeServices rt;
};

}  // namespace koptlog
