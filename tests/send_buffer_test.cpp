// SendBuffer unit tests: the per-message K release rule of paper §4.2
// (a message leaves once at most k_limit dependency entries are live),
// duplicate suppression for replayed sends, and orphan discard.
#include <gtest/gtest.h>

#include <initializer_list>

#include "runtime/receive_buffer.h"
#include "runtime/reliable_channel.h"
#include "runtime/send_buffer.h"
#include "runtime_test_util.h"

namespace koptlog {
namespace {

class SendBufferTest : public ::testing::Test {
 protected:
  AppMsg with_deps(SeqNo seq, std::initializer_list<ProcessId> deps) {
    AppMsg m = fx.msg(0, seq);
    for (ProcessId j : deps) m.tdv.set(j, Entry{1, static_cast<Sii>(seq)});
    return m;
  }

  RuntimeFixture fx;
  ReceiveBuffer recv;
  ReliableChannel channel{fx.rt, /*enabled=*/true, recv};
  SendBuffer sb{fx.rt, /*null_omission=*/true, channel};
};

TEST_F(SendBufferTest, MixedPerMessageKLimitsReleaseIndependently) {
  // Three messages, each depending on non-stable intervals of P1 and P2,
  // queued with per-message limits 0 (pessimistic), 1 and 2.
  ASSERT_TRUE(sb.enqueue(with_deps(1, {1, 2}), 0, /*k_limit=*/0));
  ASSERT_TRUE(sb.enqueue(with_deps(2, {1, 2}), 0, /*k_limit=*/1));
  ASSERT_TRUE(sb.enqueue(with_deps(3, {1, 2}), 0, /*k_limit=*/2));

  // No stability knowledge yet: only the K=2 message tolerates 2 live
  // entries.
  sb.release_eligible({});
  ASSERT_EQ(fx.api.sent.size(), 1u);
  EXPECT_EQ(fx.api.sent[0].id.seq, 3);
  EXPECT_EQ(sb.size(), 2u);

  // P1 becomes stable: the K=1 message drops to one live entry and goes.
  sb.release_eligible([](DepVector& v) { v.clear(1); });
  ASSERT_EQ(fx.api.sent.size(), 2u);
  EXPECT_EQ(fx.api.sent[1].id.seq, 2);
  EXPECT_EQ(fx.api.sent[1].tdv.non_null_count(), 1);
  EXPECT_EQ(sb.size(), 1u);

  // Everything stable: the pessimistic message finally leaves, all-NULL.
  sb.release_eligible([](DepVector& v) {
    v.clear(1);
    v.clear(2);
  });
  ASSERT_EQ(fx.api.sent.size(), 3u);
  EXPECT_EQ(fx.api.sent[2].id.seq, 1);
  EXPECT_TRUE(fx.api.sent[2].tdv.all_null());
  EXPECT_TRUE(sb.empty());
  EXPECT_EQ(fx.api.stats().counter("msgs.released"), 3);

  // Released messages were handed to the reliable channel for
  // retransmission tracking.
  EXPECT_EQ(channel.unacked_count(), 3u);
}

TEST_F(SendBufferTest, ReplayedDuplicateKeepsTheBufferedOriginal) {
  AppMsg original = with_deps(7, {1, 2});
  ASSERT_TRUE(sb.enqueue(original, 0, 1));

  // Recovery replay re-executes the send; the buffered copy (which may
  // already have entries NULLed) wins and the duplicate reports false.
  EXPECT_FALSE(sb.enqueue(with_deps(7, {1, 2, 3}), 5, 1));
  EXPECT_EQ(sb.size(), 1u);

  sb.release_eligible([](DepVector& v) { v.clear(1); });
  ASSERT_EQ(fx.api.sent.size(), 1u);
  EXPECT_EQ(fx.api.sent[0].tdv.non_null_count(), 1);
}

TEST_F(SendBufferTest, DiscardIfDropsOnlyOrphans) {
  ASSERT_TRUE(sb.enqueue(with_deps(1, {1}), 0, 0));
  ASSERT_TRUE(sb.enqueue(with_deps(2, {2}), 0, 0));

  std::vector<MsgId> discarded;
  size_t n = sb.discard_if(
      [](const AppMsg& m) { return m.tdv.at(1).has_value(); },
      [&](const AppMsg& m) { discarded.push_back(m.id); });
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(discarded.size(), 1u);
  EXPECT_EQ(discarded[0].seq, 1);
  EXPECT_EQ(sb.size(), 1u);
}

}  // namespace
}  // namespace koptlog
