#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/simulator.h"

namespace koptlog {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 150);
}

TEST(SimulatorTest, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 4);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), InvariantViolation);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(25);
  EXPECT_EQ(sim.now(), 25);  // clock advances even with no events
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, StopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorTest, EventBudgetGuardsAgainstLivelock) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_after(1, forever); };
  sim.schedule_at(0, forever);
  EXPECT_THROW(sim.run(1000), InvariantViolation);
}

}  // namespace
}  // namespace koptlog
