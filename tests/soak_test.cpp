// Soak / chaos tests: long runs, many failures, mixed configurations —
// everything the short sweeps might miss, all oracle-verified. Bounded to
// keep the suite fast on one core, but an order of magnitude bigger than
// any other test.
#include <gtest/gtest.h>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/failure_injector.h"
#include "direct/direct_process.h"

namespace koptlog {
namespace {

TEST(Soak, LongMixedRunWithFailureChurn) {
  ClusterConfig cfg;
  cfg.n = 8;
  cfg.seed = 20260708;
  cfg.enable_oracle = true;
  cfg.protocol.k = 2;
  cfg.protocol.reliable_delivery = true;
  Cluster cluster(cfg, make_uniform_app({.extra_send_denominator = 3,
                                         .output_every = 5}));
  cluster.start();
  inject_uniform_load(cluster, 300, 1'000, 2'000'000, 8, 11);
  apply_failure_plan(cluster,
                     FailurePlan::random(Rng(cfg.seed).fork("churn"), cfg.n,
                                         20, 50'000, 2'200'000));
  cluster.run_for(5'000'000);
  cluster.drain();

  EXPECT_EQ(cluster.stats().counter("crash.count"),
            cluster.stats().counter("restart.count"));
  EXPECT_GT(cluster.stats().counter("msgs.delivered"), 1'000);
  EXPECT_GT(cluster.outputs().size(), 100u);
  Oracle::Report rep = cluster.oracle()->verify(/*strict_thm4=*/true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(Soak, HighFrequencyCheckpointsAndGcUnderChurn) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.seed = 777;
  cfg.enable_oracle = true;
  cfg.protocol.checkpoint_interval_us = 15'000;
  cfg.protocol.flush_interval_us = 3'000;
  cfg.protocol.notify_interval_us = 5'000;
  Cluster cluster(cfg, make_client_server_app({}));
  cluster.start();
  inject_client_requests(cluster, 250, 1'000, 1'500'000, 13);
  apply_failure_plan(cluster,
                     FailurePlan::random(Rng(777).fork("gc-churn"), cfg.n, 10,
                                         40'000, 1'600'000));
  cluster.run_for(4'000'000);
  cluster.drain();
  EXPECT_GT(cluster.stats().counter("gc.records_reclaimed"), 0);
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(Soak, DirectEngineChurn) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.seed = 31337;
  cfg.enable_oracle = true;
  Cluster cluster(cfg, make_uniform_app({}), DirectProcess::factory());
  cluster.start();
  inject_uniform_load(cluster, 200, 1'000, 1'500'000, 7, 17);
  apply_failure_plan(cluster,
                     FailurePlan::random(Rng(31337).fork("ddt-churn"), cfg.n,
                                         10, 40'000, 1'600'000));
  cluster.run_for(4'000'000);
  cluster.drain();
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
  // The conservative hold keeps the cascade finite: rollbacks stay within
  // a small multiple of the failure count.
  EXPECT_LT(cluster.stats().counter("rollback.count"), 150);
}

TEST(Soak, StromYeminiChurnFifo) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.seed = 424242;
  cfg.enable_oracle = true;
  cfg.protocol = ProtocolConfig::strom_yemini();
  cfg.fifo = true;
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 200, 1'000, 1'500'000, 7, 19);
  apply_failure_plan(cluster,
                     FailurePlan::random(Rng(424242).fork("sy-churn"), cfg.n,
                                         8, 40'000, 1'600'000));
  cluster.run_for(4'000'000);
  cluster.drain();
  Oracle::Report rep = cluster.oracle()->verify(true);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

}  // namespace
}  // namespace koptlog
