#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/metrics.h"
#include "sim/stats.h"

namespace koptlog {
namespace {

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantilesNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(HistogramTest, QuantileAfterInterleavedAdds) {
  Histogram h;
  h.add(5);
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  h.add(1);
  h.add(9);
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(HistogramTest, TiedSamplesGiveDeterministicQuantiles) {
  // Heavy ties must not make quantiles order-sensitive: nearest-rank over
  // the sorted retained samples is a pure function of the multiset.
  Histogram fwd, rev;
  for (int i = 0; i < 300; ++i) fwd.add(i % 3);       // 0,1,2,0,1,2,...
  for (int i = 299; i >= 0; --i) rev.add(i % 3);      // reversed order
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(fwd.quantile(q), rev.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(fwd.p50(), 1.0);
  EXPECT_DOUBLE_EQ(fwd.quantile(1.0), 2.0);
}

TEST(HistogramTest, NegativeZeroCanonicalizedOnAdd) {
  // -0.0 and +0.0 compare equal but differ bitwise; an unstable sort could
  // order them differently run to run. add() canonicalizes, so quantiles
  // over zero-heavy samples (idle-latency histograms) are bit-stable.
  Histogram h;
  h.add(-0.0);
  h.add(0.0);
  h.add(-0.0);
  EXPECT_FALSE(std::signbit(h.quantile(0.0)));
  EXPECT_FALSE(std::signbit(h.quantile(1.0)));
  EXPECT_FALSE(std::signbit(h.min()));
  EXPECT_FALSE(std::signbit(h.max()));
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.add(3);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(StatsTest, CountersDefaultZeroAndAccumulate) {
  Stats s;
  EXPECT_EQ(s.counter("x"), 0);
  s.inc("x");
  s.inc("x", 4);
  EXPECT_EQ(s.counter("x"), 5);
}

TEST(StatsTest, HistogramLookupMissingIsEmpty) {
  Stats s;
  EXPECT_EQ(s.histogram("nope").count(), 0u);
  s.sample("h", 2.0);
  EXPECT_EQ(s.histogram("h").count(), 1u);
}

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"k", "value"});
  t.row().cell(int64_t{0}).cell(3.14159, 2);
  t.row().cell("N").cell("wide-cell-content");
  std::ostringstream os;
  t.print(os, "demo");
  std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("wide-cell-content"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(StatsTest, PrintStatsDumpsEverything) {
  Stats s;
  s.inc("a.count", 2);
  s.sample("b.lat", 10.0);
  std::ostringstream os;
  print_stats(s, os);
  EXPECT_NE(os.str().find("a.count = 2"), std::string::npos);
  EXPECT_NE(os.str().find("b.lat"), std::string::npos);
}

TEST(StatsTest, PrintStatsHistogramLineHasMomentsAndQuantiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.sample("lat", i);
  std::ostringstream os;
  print_stats(s, os);
  std::string out = os.str();
  EXPECT_NE(out.find("counters:"), std::string::npos);
  EXPECT_NE(out.find("histograms:"), std::string::npos);
  EXPECT_NE(out.find("lat: n=100 mean=50.5 p50=50 p99=99 max=100"),
            std::string::npos)
      << out;
}

TEST(StatsTest, PrintStatsEmptyIsStillWellFormed) {
  Stats s;
  std::ostringstream os;
  print_stats(s, os);
  EXPECT_EQ(os.str(), "counters:\nhistograms:\n");
}

TEST(BenchJsonTest, WritesParamsMetricsAndTypedTableCells) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(int64_t{3});
  t.row().cell("beta").cell(2.5, 1);
  BenchJson j("demo");
  j.param("n", 6).param("mode", "fast").metric("outputs", int64_t{42});
  j.table("results", t);
  std::ostringstream os;
  j.write(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"bench\": \"demo\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"n\": 6"), std::string::npos);
  EXPECT_NE(out.find("\"mode\": \"fast\""), std::string::npos);
  EXPECT_NE(out.find("\"outputs\": 42"), std::string::npos);
  EXPECT_NE(out.find("\"columns\": [\"name\", \"value\"]"),
            std::string::npos);
  // Numeric cells serialize as JSON numbers, strings as JSON strings.
  EXPECT_NE(out.find("[\"alpha\", 3]"), std::string::npos) << out;
  EXPECT_NE(out.find("[\"beta\", 2.5]"), std::string::npos) << out;
}

}  // namespace
}  // namespace koptlog
