#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.h"
#include "sim/stats.h"

namespace koptlog {
namespace {

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantilesNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(HistogramTest, QuantileAfterInterleavedAdds) {
  Histogram h;
  h.add(5);
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  h.add(1);
  h.add(9);
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.add(3);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(StatsTest, CountersDefaultZeroAndAccumulate) {
  Stats s;
  EXPECT_EQ(s.counter("x"), 0);
  s.inc("x");
  s.inc("x", 4);
  EXPECT_EQ(s.counter("x"), 5);
}

TEST(StatsTest, HistogramLookupMissingIsEmpty) {
  Stats s;
  EXPECT_EQ(s.histogram("nope").count(), 0u);
  s.sample("h", 2.0);
  EXPECT_EQ(s.histogram("h").count(), 1u);
}

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"k", "value"});
  t.row().cell(int64_t{0}).cell(3.14159, 2);
  t.row().cell("N").cell("wide-cell-content");
  std::ostringstream os;
  t.print(os, "demo");
  std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("wide-cell-content"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(StatsTest, PrintStatsDumpsEverything) {
  Stats s;
  s.inc("a.count", 2);
  s.sample("b.lat", 10.0);
  std::ostringstream os;
  print_stats(s, os);
  EXPECT_NE(os.str().find("a.count = 2"), std::string::npos);
  EXPECT_NE(os.str().find("b.lat"), std::string::npos);
}

}  // namespace
}  // namespace koptlog
