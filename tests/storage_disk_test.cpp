// Disk storage backend tests (ctest label "storage"): backend round-trips
// through a real directory, the flushed-LSN durability contract, on-disk
// format fuzz-smoke (a mutated directory is detected/truncated, never
// mis-replayed), and cluster-level restart equivalence — a crashing run on
// --storage=disk audits green and makes the same release/commit decisions
// as the cost-model run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/causal_graph.h"
#include "analysis/trace_diff.h"
#include "app/workloads.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "core/process.h"
#include "obs/audit.h"
#include "obs/trace_io.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "storage/disk/format.h"
#include "storage/disk/recovery.h"
#include "storage/stable_storage.h"

namespace koptlog {
namespace {

namespace fs = std::filesystem;

// A unique scratch directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::ostringstream os;
    os << "koptlog_" << info->test_suite_name() << "_" << info->name() << "_"
       << tag;
    path = fs::temp_directory_path() / os.str();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
  fs::path path;
};

StorageOptions disk_opts(const TempDir& dir, bool recover = false) {
  StorageOptions o;
  o.backend = "disk";
  o.dir = dir.str();
  o.recover = recover;
  return o;
}

LogRecord sample_record(int n, SeqNo seq) {
  LogRecord rec;
  rec.msg.id = MsgId{1, seq};
  rec.msg.from = 1;
  rec.msg.to = 0;
  rec.msg.payload = AppPayload{static_cast<int32_t>(seq),
                               static_cast<int64_t>(7 * seq), 0, 0, 1};
  rec.msg.tdv = DepVector(n);
  rec.msg.tdv.set(1, Entry{1, static_cast<Sii>(seq)});
  rec.msg.born_of = IntervalId{1, 1, static_cast<Sii>(seq)};
  rec.started = IntervalId{0, 1, static_cast<Sii>(seq + 1)};
  return rec;
}

void expect_records_equal(const LogRecord& a, const LogRecord& b,
                          size_t pos) {
  // Byte equality through the on-disk codec is the strongest (and
  // simplest) field-complete comparison.
  EXPECT_EQ(disk::encode_message(pos, a), disk::encode_message(pos, b))
      << "log record at position " << pos;
}

// ---- backend round-trip ----------------------------------------------------

TEST(DiskBackendTest, RoundTripThroughRecovery) {
  const int n = 4;
  TempDir dir("rt");
  Simulator sim;
  Stats stats;
  StorageCosts costs;

  StableStorage st(costs, make_storage_backend(disk_opts(dir), costs, 0, n,
                                               sim, &stats));
  ASSERT_NE(st.backend(), nullptr);
  EXPECT_TRUE(st.backend()->durable());

  for (SeqNo s = 0; s < 6; ++s) st.log().append(sample_record(n, s));
  Checkpoint cp;
  cp.at = Entry{1, 0};
  cp.tdv = DepVector(n);
  cp.log_pos = 0;
  cp.app_hash = 42;
  st.checkpoints().push(std::move(cp));

  Announcement a;
  a.ended = Entry{1, 3};
  a.from = 2;
  a.from_failure = true;
  st.journal_announcement(a);
  st.set_durable_max_inc(2);
  AppMsg pm = sample_record(n, 99).msg;
  st.park(pm);

  // Flush everything appended so far and let the group-commit window fire.
  size_t durable = 0;
  st.backend()->request_flush(st.log().size(), 6,
                              [&durable](size_t lsn) { durable = lsn; });
  sim.run();
  ASSERT_GE(durable, 6u);
  st.log().flush_to(durable);

  // Two more records that never flush: a crash must lose exactly these.
  st.log().append(sample_record(n, 6));
  st.log().append(sample_record(n, 7));
  st.backend()->on_crash();

  // A second backend over the same directory must rebuild the fsynced
  // prefix: 6 records, the checkpoint, the journal, the parked message and
  // the incarnation mark — and nothing of the unflushed suffix.
  StableStorage st2(costs, make_storage_backend(disk_opts(dir, true), costs,
                                                0, n, sim, &stats));
  ASSERT_TRUE(st2.recover());
  ASSERT_EQ(st2.log().size(), 6u);
  EXPECT_EQ(st2.log().base(), 0u);
  EXPECT_EQ(st2.log().volatile_count(), 0u);
  for (size_t p = 0; p < 6; ++p)
    expect_records_equal(st2.log().at(p), st.log().at(p), p);
  ASSERT_EQ(st2.checkpoints().size(), 1u);
  EXPECT_EQ(st2.checkpoints().latest().app_hash, 42u);
  ASSERT_EQ(st2.announcement_journal().size(), 1u);
  EXPECT_EQ(st2.announcement_journal()[0].ended, a.ended);
  EXPECT_EQ(st2.announcement_journal()[0].from, a.from);
  EXPECT_EQ(st2.durable_max_inc(), 2u);
  ASSERT_EQ(st2.parked().size(), 1u);
  EXPECT_EQ(st2.parked().begin()->first, pm.id);
}

TEST(DiskBackendTest, FlushCompletionImpliesFsyncedRecovery) {
  // The acceptance contract: a completion's durable_lsn must only cover
  // records an fsync actually finished for — so a crash immediately after
  // the completion, with no further flushing, must still recover them.
  const int n = 3;
  TempDir dir("lsn");
  Simulator sim;
  StorageCosts costs;
  StableStorage st(costs, make_storage_backend(disk_opts(dir), costs, 1, n,
                                               sim, nullptr));
  Checkpoint cp;
  cp.tdv = DepVector(n);
  st.checkpoints().push(std::move(cp));
  for (SeqNo s = 0; s < 4; ++s) st.log().append(sample_record(n, s));

  size_t durable = 0;
  st.backend()->request_flush(4, 4, [&durable](size_t lsn) { durable = lsn; });
  sim.run();
  ASSERT_GE(durable, 4u);
  st.backend()->on_crash();

  StableStorage st2(costs, make_storage_backend(disk_opts(dir, true), costs,
                                                1, n, sim, nullptr));
  ASSERT_TRUE(st2.recover());
  EXPECT_GE(st2.log().size(), durable);
}

TEST(DiskBackendTest, TruncateDiscardAndSegmentRollSurviveRecovery) {
  const int n = 4;
  TempDir dir("gc");
  Simulator sim;
  Stats stats;
  StorageCosts costs;
  StorageOptions opts = disk_opts(dir);
  opts.segment_bytes = 512;  // force frequent segment rolls
  StableStorage st(costs,
                   make_storage_backend(opts, costs, 0, n, sim, &stats));

  Checkpoint cp0;
  cp0.tdv = DepVector(n);
  cp0.log_pos = 0;
  st.checkpoints().push(std::move(cp0));
  // Flush in batches: the segment-roll check runs per batch write, so
  // several ~700-byte batches against a 512-byte bound must roll.
  for (SeqNo s = 0; s < 40; ++s) {
    st.log().append(sample_record(n, s));
    if (s % 8 == 7) {
      st.backend()->sync_flush();
      st.log().flush_all();
    }
  }
  st.backend()->sync_flush();
  st.log().flush_all();
  EXPECT_GT(stats.counter("storage.segments_rolled"), 0);

  // Rollback drops the suffix, GC reclaims the prefix (with a checkpoint
  // positioned inside the surviving window).
  st.log().truncate_from(30);
  Checkpoint cp1;
  cp1.tdv = DepVector(n);
  cp1.log_pos = 10;
  st.checkpoints().push(std::move(cp1));
  st.log().discard_prefix(10);
  st.checkpoints().discard_before(1);

  StableStorage st2(costs, make_storage_backend(disk_opts(dir, true), costs,
                                                0, n, sim, &stats));
  ASSERT_TRUE(st2.recover());
  EXPECT_EQ(st2.log().base(), 10u);
  ASSERT_EQ(st2.log().size(), 30u);
  for (size_t p = 10; p < 30; ++p)
    expect_records_equal(st2.log().at(p), st.log().at(p), p);
  ASSERT_EQ(st2.checkpoints().size(), 1u);
  EXPECT_EQ(st2.checkpoints().latest().log_pos, 10u);
}

// ---- on-disk format fuzz-smoke ---------------------------------------------

// Build a reference process directory with several segments, a journal and
// checkpoints, then mutate copies of it. The analysis scan must never
// crash, and whatever it recovers must be a contiguous run of records that
// are byte-identical to the originals — damage is detected and truncated,
// never mis-replayed.
class FormatFuzzTest : public ::testing::Test {
 protected:
  static constexpr int kN = 4;

  void SetUp() override {
    ref_ = std::make_unique<TempDir>("ref");
    Simulator sim;
    StorageCosts costs;
    StorageOptions opts = disk_opts(*ref_);
    opts.segment_bytes = 400;
    StableStorage st(costs,
                     make_storage_backend(opts, costs, 0, kN, sim, nullptr));
    Checkpoint cp;
    cp.tdv = DepVector(kN);
    st.checkpoints().push(std::move(cp));
    for (SeqNo s = 0; s < 24; ++s) {
      LogRecord rec = sample_record(kN, s);
      baseline_.push_back(rec);
      st.log().append(std::move(rec));
    }
    Announcement a;
    a.ended = Entry{1, 5};
    a.from = 3;
    st.journal_announcement(a);
    st.set_durable_max_inc(1);
    st.backend()->sync_flush();
    proc_dir_ = fs::path(ref_->str()) / "p0";
  }

  // Copy the reference dir and apply `mutate` to it; return the scratch.
  fs::path make_mutant(const std::function<void(const fs::path&)>& mutate) {
    fs::path scratch = fs::path(ref_->str()) / "mutant";
    fs::remove_all(scratch);
    fs::copy(proc_dir_, scratch);
    mutate(scratch);
    return scratch;
  }

  // The fuzz oracle: analysis terminates, and every recovered record is
  // byte-identical to the baseline record at its position.
  void check_never_misreplays(const fs::path& dir) {
    disk::AnalysisResult r = disk::analyze_process_dir(dir.string());
    ASSERT_LE(r.image.base + r.image.records.size(), baseline_.size());
    for (size_t i = 0; i < r.image.records.size(); ++i) {
      size_t pos = r.image.base + i;
      ASSERT_LT(pos, baseline_.size());
      EXPECT_EQ(disk::encode_message(pos, r.image.records[i]),
                disk::encode_message(pos, baseline_[pos]))
          << "recovered record at position " << pos
          << " differs from what was written";
    }
    for (const Checkpoint& cp : r.image.checkpoints) {
      EXPECT_GE(cp.log_pos, r.image.base);
      EXPECT_LE(cp.log_pos, r.image.base + r.image.records.size());
    }
  }

  static std::vector<fs::path> files_of(const fs::path& dir) {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(dir)) out.push_back(e.path());
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<TempDir> ref_;
  fs::path proc_dir_;
  std::vector<LogRecord> baseline_;
};

TEST_F(FormatFuzzTest, TruncatedTailsRecoverAPrefix) {
  Rng rng(2024);
  for (int iter = 0; iter < 25; ++iter) {
    fs::path dir = make_mutant([&](const fs::path& d) {
      std::vector<fs::path> fl = files_of(d);
      const fs::path& victim = fl[rng.next_below(fl.size())];
      uintmax_t sz = fs::file_size(victim);
      if (sz == 0) return;
      fs::resize_file(victim, rng.next_below(sz));
    });
    check_never_misreplays(dir);
  }
}

TEST_F(FormatFuzzTest, BitFlipsNeverMisreplay) {
  Rng rng(77);
  for (int iter = 0; iter < 40; ++iter) {
    fs::path dir = make_mutant([&](const fs::path& d) {
      std::vector<fs::path> fl = files_of(d);
      const fs::path& victim = fl[rng.next_below(fl.size())];
      uintmax_t sz = fs::file_size(victim);
      if (sz == 0) return;
      std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
      auto off = static_cast<std::streamoff>(rng.next_below(sz));
      f.seekg(off);
      char c = 0;
      f.get(c);
      c = static_cast<char>(c ^ (1 << rng.next_below(8)));
      f.seekp(off);
      f.put(c);
    });
    check_never_misreplays(dir);
  }
}

TEST_F(FormatFuzzTest, GarbageAppendsAreTruncated) {
  Rng rng(13);
  for (int iter = 0; iter < 15; ++iter) {
    fs::path dir = make_mutant([&](const fs::path& d) {
      std::vector<fs::path> fl = files_of(d);
      const fs::path& victim = fl[rng.next_below(fl.size())];
      std::ofstream f(victim, std::ios::app | std::ios::binary);
      uint64_t len = 1 + rng.next_below(64);
      for (uint64_t i = 0; i < len; ++i)
        f.put(static_cast<char>(rng.next_below(256)));
    });
    check_never_misreplays(dir);
  }
}

TEST_F(FormatFuzzTest, DuplicatedRecordBytesNeverMisreplay) {
  // Re-appending a copy of an earlier well-formed frame (a double write)
  // must replay later-wins without inventing records.
  Rng rng(5);
  for (int iter = 0; iter < 15; ++iter) {
    fs::path dir = make_mutant([&](const fs::path& d) {
      std::vector<fs::path> fl = files_of(d);
      const fs::path& victim = fl[rng.next_below(fl.size())];
      std::ifstream in(victim, std::ios::binary);
      std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      if (bytes.empty()) return;
      std::ofstream f(victim, std::ios::app | std::ios::binary);
      f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    });
    check_never_misreplays(dir);
  }
}

TEST_F(FormatFuzzTest, EmptyAndHeaderOnlyFilesAreHandled) {
  fs::path dir = make_mutant([&](const fs::path& d) {
    std::ofstream(d / "wal-000099.seg", std::ios::binary);  // zero bytes
  });
  check_never_misreplays(dir);
}

// ---- cluster-level restart equivalence -------------------------------------

struct ClusterRun {
  std::vector<Cluster::CommittedOutput> outputs;
  Trace trace;
  AuditReport audit;
};

ClusterRun run_cluster(const std::string& backend, const std::string& dir,
                       uint64_t seed) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = seed;
  cfg.protocol.k = 2;
  cfg.record_events = true;
  // Align the two backends' flush completion times: the model completes a
  // flush after async_flush_base_us + nvol * per_msg_us; the disk backend
  // after one group-commit window. With per_msg_us = 0 and the window equal
  // to the base latency, both complete at the same instant, so the release
  // and commit schedules must coincide exactly.
  cfg.protocol.storage.async_flush_per_msg_us = 0;
  cfg.protocol.storage_backend.group_commit_us =
      cfg.protocol.storage.async_flush_base_us;
  cfg.protocol.storage_backend.backend = backend;
  cfg.protocol.storage_backend.dir = dir;
  Cluster cluster(cfg, make_uniform_app({.output_every = 4}));
  cluster.start();
  inject_uniform_load(cluster, 120, 1'000, 600'000, 5, 11);
  cluster.fail_at(250'000, 1);
  cluster.fail_at(420'000, 3);
  cluster.run_for(2'000'000);
  cluster.drain();
  ClusterRun r;
  r.outputs = cluster.outputs();
  r.trace.n = cfg.n;
  r.trace.events = cluster.recording()->merged();
  r.audit = audit_trace(r.trace);
  return r;
}

TEST(RestartEquivalenceTest, DiskRunMatchesModelRunAndAuditsGreen) {
  TempDir dir("equiv");
  ClusterRun model = run_cluster("model", "", 11);
  ClusterRun disk = run_cluster("disk", dir.str(), 11);

  // Both audits green with real coverage: the disk run crashed, restarted
  // from its on-disk state, and still violates nothing.
  EXPECT_TRUE(model.audit.ok()) << model.audit.summary();
  EXPECT_TRUE(disk.audit.ok()) << disk.audit.summary();
  EXPECT_GT(disk.audit.announcements, 0u);
  EXPECT_GT(disk.audit.commits_checked, 0u);

  // Identical committed outputs, in order.
  ASSERT_EQ(model.outputs.size(), disk.outputs.size());
  for (size_t i = 0; i < model.outputs.size(); ++i) {
    EXPECT_EQ(model.outputs[i].id, disk.outputs[i].id) << "output " << i;
    EXPECT_EQ(model.outputs[i].committed_at, disk.outputs[i].committed_at)
        << "output " << i;
    EXPECT_EQ(model.outputs[i].payload, disk.outputs[i].payload)
        << "output " << i;
  }

  // The same verdict through the trace-diff engine (what `koptlog_trace
  // diff` prints): every episode matched with identical fate and timing,
  // every commit unmoved.
  analysis::CausalGraph ga(model.trace), gb(disk.trace);
  analysis::TraceDiff d = analysis::diff_traces(ga, gb);
  EXPECT_TRUE(d.comparable);
  EXPECT_EQ(d.only_a, 0);
  EXPECT_EQ(d.only_b, 0);
  EXPECT_TRUE(d.changed.empty())
      << d.changed.size() << " episodes changed fate/timing";
  EXPECT_TRUE(d.commit_changed.empty())
      << d.commit_changed.size() << " commits moved";
  EXPECT_EQ(d.matched, d.identical);

  // The disk trace carries the storage events; the model trace must not
  // (golden traces stay byte-stable).
  auto count_kind = [](const Trace& t, EventKind k) {
    size_t c = 0;
    for (const ProtocolEvent& e : t.events) c += (e.kind == k);
    return c;
  };
  EXPECT_EQ(count_kind(model.trace, EventKind::kStorageFlush), 0u);
  EXPECT_EQ(count_kind(model.trace, EventKind::kStorageRecover), 0u);
  EXPECT_GT(count_kind(disk.trace, EventKind::kStorageFlush), 0u);
  EXPECT_GT(count_kind(disk.trace, EventKind::kStorageRecover), 0u);

  // Flushed-LSN monotonicity per process: a completion can only extend
  // what is durable, never retract it (within one incarnation's lifetime —
  // a restart re-recovers, so reset at each kStorageRecover).
  std::map<ProcessId, int64_t> hi;
  for (const ProtocolEvent& e : disk.trace.events) {
    if (e.kind == EventKind::kStorageRecover) {
      hi[e.pid] = e.lsn;
    } else if (e.kind == EventKind::kStorageFlush) {
      EXPECT_GE(e.lsn, hi[e.pid]) << "P" << e.pid << " flush went backwards";
      hi[e.pid] = e.lsn;
    }
  }
}

TEST(RestartEquivalenceTest, DiskTraceRoundTripsThroughJsonl) {
  // The new storage events must survive the JSONL writer/parser: the whole
  // stream parses strictly, and every storage event comes back
  // field-for-field identical (other kinds serialize only their schema
  // fields, so whole-event equality is not the contract here).
  TempDir dir("jsonl");
  ClusterRun disk = run_cluster("disk", dir.str(), 17);
  std::ostringstream os;
  os << R"({"kind":"meta","version":1,"n":4})" << "\n";
  for (const ProtocolEvent& e : disk.trace.events)
    os << event_to_json(e) << "\n";
  std::istringstream is(os.str());
  std::vector<std::string> errors;
  Trace back = read_trace_jsonl(is, errors);
  ASSERT_TRUE(errors.empty()) << errors[0];
  ASSERT_EQ(back.events.size(), disk.trace.events.size());
  size_t storage_events = 0;
  for (size_t i = 0; i < back.events.size(); ++i) {
    const ProtocolEvent& orig = disk.trace.events[i];
    EXPECT_EQ(back.events[i].kind, orig.kind) << "event " << i;
    if (orig.kind != EventKind::kStorageFlush &&
        orig.kind != EventKind::kStorageRecover)
      continue;
    ++storage_events;
    ASSERT_EQ(back.events[i], orig) << "storage event " << i;
  }
  EXPECT_GT(storage_events, 0u);
}

}  // namespace
}  // namespace koptlog
