// Regression coverage for the staging-thread / flusher-thread race in the
// disk backend's threaded_io mode.
//
// fire_window runs on the owning shard's event loop and used to publish the
// batch's message-position bound (seg_max_msg_pos_ / next_start_lsn_) with a
// plain unlocked write *after* handing the batch to the flusher, while the
// flusher reads those fields inside write_wal_now (under io_mu_) to stamp
// segment-roll metadata. TSan flagged the pair; a roll landing in the window
// could also stamp the new segment with a stale start position. The fix
// publishes the bound via note_batch_max_pos (under io_mu_) before the batch
// is enqueued.
//
// This test makes that interleaving hot: tiny segments force the flusher to
// roll constantly while small group-commit windows keep the shard threads
// staging concurrent batches. It lives in the threaded suite so
// scripts/sanitize_tests.sh runs it under ThreadSanitizer (ctest -L
// threaded), where the old code fails deterministically.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "app/workloads.h"
#include "core/failure_injector.h"
#include "exec/threaded_cluster.h"
#include "obs/audit.h"
#include "obs/health/health.h"

namespace koptlog {
namespace {

constexpr double kFastScale = 0.02;

TEST(StorageRaceTest, ThreadedIoSegmentRollsUnderConcurrentStaging) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "koptlog_storage_race_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  HealthRegistry health;
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 73;
  cfg.protocol.k = 2;
  cfg.record_events = true;
  cfg.protocol.storage_backend.backend = "disk";
  cfg.protocol.storage_backend.dir = dir.string();
  cfg.protocol.storage_backend.threaded_io = true;
  // Tiny segments + short windows: every few staged batches the flusher
  // rolls a segment (reading the shared position bound) while the shard
  // threads keep publishing new bounds — the exact racing pair.
  cfg.protocol.storage_backend.segment_bytes = 2048;
  cfg.protocol.storage_backend.group_commit_us = 200;
  cfg.protocol.storage_backend.health = &health;
  ThreadedOptions opt;
  opt.shards = 2;
  opt.time_scale = kFastScale;
  opt.health = &health;
  ThreadedCluster cluster(cfg, opt, make_uniform_app({}));
  cluster.start();
  const SimTime load_end = 400'000;
  inject_uniform_load(cluster, 120, 1'000, load_end, /*ttl=*/6, 74);
  apply_failure_plan(cluster, FailurePlan::random(Rng(73).fork("fail"), cfg.n,
                                                  1, load_end / 10, load_end));
  cluster.run_for(load_end);
  cluster.drain();
  cluster.shutdown();

  // The scenario really exercised the path: segments rolled on the flusher
  // while shards staged, and the run still audits clean (a stale roll
  // position would surface as lost/duplicated stable records on recovery).
  uint64_t rolls = 0, bytes = 0;
  HealthSample s = health.sample(0);
  for (const auto& dom : s.domains) {
    if (dom.name.rfind("storage", 0) != 0) continue;
    for (const auto& [name, v] : dom.counters) {
      if (name == "wal.segment_rolls") rolls += v;
      if (name == "wal.bytes_written") bytes += v;
    }
  }
  EXPECT_GT(rolls, 0u) << "segments never rolled — shrink segment_bytes";
  EXPECT_GT(bytes, 0u);
  EXPECT_GT(cluster.stats().counter("storage.fsyncs"), 0);

  Trace trace;
  trace.n = cfg.n;
  trace.events = cluster.recording()->merged();
  AuditReport rep = audit_trace(trace);
  std::string violations;
  for (const auto& v : rep.violations) violations += v + "\n";
  EXPECT_TRUE(rep.ok()) << violations;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace koptlog
