#include <gtest/gtest.h>

#include "common/check.h"
#include "storage/stable_storage.h"

namespace koptlog {
namespace {

LogRecord make_record(ProcessId pid, Incarnation inc, Sii sii) {
  LogRecord r;
  r.msg.id = MsgId{0, static_cast<SeqNo>(sii)};
  r.msg.from = 0;
  r.msg.to = pid;
  r.msg.tdv = DepVector(4);
  r.started = IntervalId{pid, inc, sii};
  return r;
}

TEST(MessageLogTest, AppendIsVolatileUntilFlush) {
  MessageLog log;
  log.append(make_record(1, 0, 2));
  log.append(make_record(1, 0, 3));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.stable_count(), 0u);
  EXPECT_EQ(log.volatile_count(), 2u);
  EXPECT_EQ(log.flush_all(), 2u);
  EXPECT_EQ(log.stable_count(), 2u);
  EXPECT_EQ(log.volatile_count(), 0u);
}

TEST(MessageLogTest, FlushToIsMonotone) {
  MessageLog log;
  for (Sii s = 2; s <= 6; ++s) log.append(make_record(1, 0, s));
  log.flush_to(3);
  EXPECT_EQ(log.stable_count(), 3u);
  log.flush_to(1);  // going backwards is a no-op
  EXPECT_EQ(log.stable_count(), 3u);
  log.flush_to(5);
  EXPECT_EQ(log.stable_count(), 5u);
}

TEST(MessageLogTest, LoseVolatileDropsOnlySuffix) {
  MessageLog log;
  for (Sii s = 2; s <= 5; ++s) log.append(make_record(1, 0, s));
  log.flush_to(2);
  auto lost = log.lose_volatile();
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(lost[0].started.sii, 4);
  EXPECT_EQ(lost[1].started.sii, 5);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.volatile_count(), 0u);
}

TEST(MessageLogTest, TruncateReturnsDroppedAndFixesStablePrefix) {
  MessageLog log;
  for (Sii s = 2; s <= 7; ++s) log.append(make_record(1, 0, s));
  log.flush_all();
  auto dropped = log.truncate_from(3);
  ASSERT_EQ(dropped.size(), 3u);
  EXPECT_EQ(dropped[0].started.sii, 5);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.stable_count(), 3u);
  // The log can grow again after truncation.
  log.append(make_record(1, 1, 5));
  EXPECT_EQ(log.volatile_count(), 1u);
}

TEST(MessageLogTest, TruncateBeyondEndThrows) {
  MessageLog log;
  log.append(make_record(1, 0, 2));
  EXPECT_THROW(log.truncate_from(5), InvariantViolation);
}

TEST(MessageLogTest, DiscardPrefixKeepsLogicalPositions) {
  MessageLog log;
  for (Sii s = 2; s <= 9; ++s) log.append(make_record(1, 0, s));
  log.flush_to(6);  // records at logical [0,6) stable
  EXPECT_EQ(log.discard_prefix(4), 4u);
  EXPECT_EQ(log.base(), 4u);
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.retained_count(), 4u);
  EXPECT_EQ(log.stable_count(), 6u);
  // Logical addressing unchanged: position 5 is still the record for (0,7).
  EXPECT_EQ(log.at(5).started.sii, 7);
  // Positions below base are inaccessible.
  EXPECT_THROW(log.at(3), InvariantViolation);
  // discard_prefix is idempotent-monotone.
  EXPECT_EQ(log.discard_prefix(2), 0u);
  // Cannot GC the volatile suffix.
  EXPECT_THROW(log.discard_prefix(7), InvariantViolation);
}

TEST(MessageLogTest, TruncateAndFlushHonorLogicalBase) {
  MessageLog log;
  for (Sii s = 2; s <= 7; ++s) log.append(make_record(1, 0, s));
  log.flush_all();
  log.discard_prefix(3);
  auto dropped = log.truncate_from(5);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].started.sii, 7);
  EXPECT_EQ(log.size(), 5u);
  log.append(make_record(1, 1, 7));
  log.flush_to(6);
  EXPECT_EQ(log.stable_count(), 6u);
  EXPECT_EQ(log.volatile_count(), 0u);
}

TEST(CheckpointStoreTest, DiscardBeforeShiftsIndices) {
  CheckpointStore store;
  for (Sii s = 1; s <= 4; ++s) {
    Checkpoint cp;
    cp.at = Entry{0, s};
    store.push(std::move(cp));
  }
  store.discard_before(2);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.at(0).at.sii, 3);
  EXPECT_EQ(store.latest().at.sii, 4);
}

TEST(StableStorageTest, ParkUnparkRoundTrip) {
  StableStorage st(StorageCosts{});
  AppMsg m;
  m.id = MsgId{2, 7};
  st.park(m);
  EXPECT_EQ(st.parked().size(), 1u);
  st.park(m);  // idempotent overwrite
  EXPECT_EQ(st.parked().size(), 1u);
  st.unpark(MsgId{2, 7});
  EXPECT_TRUE(st.parked().empty());
  st.unpark(MsgId{2, 7});  // unparking absent id is a no-op
}

TEST(CheckpointStoreTest, LatestWhereFindsNewestMatching) {
  CheckpointStore store;
  for (Sii s = 1; s <= 5; ++s) {
    Checkpoint cp;
    cp.at = Entry{0, s};
    cp.tdv = DepVector(2);
    store.push(std::move(cp));
  }
  auto idx = store.latest_where(
      [](const Checkpoint& cp) { return cp.at.sii <= 3; });
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(store.at(*idx).at.sii, 3);
  auto none = store.latest_where([](const Checkpoint&) { return false; });
  EXPECT_FALSE(none.has_value());
}

TEST(CheckpointStoreTest, DiscardAfterKeepsPrefix) {
  CheckpointStore store;
  for (Sii s = 1; s <= 4; ++s) {
    Checkpoint cp;
    cp.at = Entry{0, s};
    store.push(std::move(cp));
  }
  store.discard_after(1);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.latest().at.sii, 2);
}

TEST(StableStorageTest, DurableIncarnationIsMonotone) {
  StableStorage st(StorageCosts{});
  EXPECT_EQ(st.durable_max_inc(), 0);
  st.set_durable_max_inc(2);
  EXPECT_EQ(st.durable_max_inc(), 2);
  st.set_durable_max_inc(2);  // idempotent ok
  EXPECT_THROW(st.set_durable_max_inc(1), InvariantViolation);
}

TEST(StableStorageTest, AnnouncementJournalAccumulates) {
  StableStorage st(StorageCosts{});
  st.journal_announcement(Announcement{1, Entry{0, 4}, true});
  st.journal_announcement(Announcement{2, Entry{1, 9}, false});
  ASSERT_EQ(st.announcement_journal().size(), 2u);
  EXPECT_EQ(st.announcement_journal()[0].from, 1);
  EXPECT_EQ(st.announcement_journal()[1].ended, (Entry{1, 9}));
}

}  // namespace
}  // namespace koptlog
