// Tests for the under-specified corners documented in PROTOCOL.md §4 —
// the decisions the paper's listing leaves implicit. Each test pins one
// invariant that a naive transcription of Figures 2-3 would violate.
#include <gtest/gtest.h>

#include "test_harness.h"

namespace koptlog {
namespace {

AppMsg poisoned(TestHarness& h, ProcessId to, Entry bad_dep_on_p1,
                int32_t kind = ScriptedApp::kNoop, int64_t a = 0) {
  AppMsg m = h.env_msg(to, AppPayload{kind, a, 0, 0, 0});
  m.tdv.set(1, bad_dep_on_p1);
  m.born_of = IntervalId{1, bad_dep_on_p1.inc, bad_dep_on_p1.sii};
  return m;
}

// PROTOCOL.md §4.2: a flush must never certify the bookkeeping interval a
// rollback starts — only a checkpoint may, because only a checkpoint makes
// it reconstructable.
TEST(Subtleties, FlushNeverCertifiesTheRecoveryInterval) {
  TestHarness h(3);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  p->handle_app_msg(poisoned(h, 0, Entry{0, 9}));
  p->handle_announcement(Announcement{1, Entry{0, 4}, true});
  ASSERT_EQ(p->current(), (Entry{1, 2}));  // the recovery interval
  // A flush with no new records publishes nothing about (1,2)...
  p->force_flush();
  EXPECT_FALSE(p->log_table().of(0).covers(Entry{1, 2}));
  // ...and the own-entry for it correspondingly stays live.
  ASSERT_TRUE(p->tdv().at(0).has_value());
  EXPECT_EQ(*p->tdv().at(0), (Entry{1, 2}));
  // A checkpoint makes it reconstructable and may certify it.
  p->checkpoint_now();
  EXPECT_TRUE(p->log_table().of(0).covers(Entry{1, 2}));
  EXPECT_FALSE(p->tdv().at(0).has_value());
}

// ...but once a delivery of the new incarnation is flushed, the watermark
// legitimately covers the bookkeeping interval beneath it (the restart
// replay reconstructs past it without materializing it).
TEST(Subtleties, FlushedSuccessorCoversTheRecoveryIntervalBeneath) {
  TestHarness h(3);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  p->handle_app_msg(poisoned(h, 0, Entry{0, 9}));
  p->handle_announcement(Announcement{1, Entry{0, 4}, true});
  h.tick(*p);  // (1,3), a real record
  p->force_flush();
  EXPECT_TRUE(p->log_table().of(0).covers(Entry{1, 3}));
  EXPECT_TRUE(p->log_table().of(0).covers(Entry{1, 2}));
}

// PROTOCOL.md §4.6: after a rollback, new sends must not reuse message ids
// handed out by the undone era (the send counter is clamped, not reset).
TEST(Subtleties, SendCounterNeverRegressesAcrossRollback) {
  TestHarness h(3);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  // A poisoned command: its delivery sends data (seq 1) and is an orphan.
  AppMsg cmd = poisoned(h, 0, Entry{0, 9}, ScriptedApp::kSendCmd, /*a=*/2);
  p->handle_app_msg(cmd);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].id.seq, 1u);
  h.sent.clear();
  p->handle_announcement(Announcement{1, Entry{0, 4}, true});
  EXPECT_EQ(p->rollbacks(), 1);
  // The orphaned send's id (seq 1) is burned: the next send takes seq 2.
  AppMsg next = h.command_send(*p, 2);
  EXPECT_EQ(next.id.seq, 2u);
}

// PROTOCOL.md §4.4: a checkpoint taken while the state was an undetected
// orphan must be skipped by the restore search; the initial checkpoint is
// the always-present fallback.
TEST(Subtleties, OrphanedCheckpointIsSkippedAtRollback) {
  TestHarness h(3);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  p->handle_app_msg(poisoned(h, 0, Entry{0, 9}));
  p->checkpoint_now();  // checkpoint of an orphan-to-be state
  ASSERT_EQ(p->storage().checkpoints().size(), 2u);
  p->handle_announcement(Announcement{1, Entry{0, 4}, true});
  EXPECT_EQ(p->rollbacks(), 1);
  // The poisoned checkpoint was discarded; only the initial one remains,
  // and the process restarted its chain from it.
  EXPECT_EQ(p->storage().checkpoints().size(), 1u);
  EXPECT_EQ(p->current(), (Entry{1, 2}));
}

// Announcements are idempotent: redelivery (the cluster's restart catch-up
// path re-sends every historical announcement) must not journal or roll
// back twice.
TEST(Subtleties, DuplicateAnnouncementsAreNoOps) {
  TestHarness h(3);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  p->handle_app_msg(poisoned(h, 0, Entry{0, 9}));
  Announcement r{1, Entry{0, 4}, true};
  p->handle_announcement(r);
  ASSERT_EQ(p->rollbacks(), 1);
  size_t journal = p->storage().announcement_journal().size();
  p->handle_announcement(r);
  p->handle_announcement(r);
  EXPECT_EQ(p->rollbacks(), 1);
  EXPECT_EQ(p->storage().announcement_journal().size(), journal);
}

// PROTOCOL.md §4.7: an end-table entry for incarnation t also dooms
// dependencies on earlier incarnations beyond its index — end to end.
TEST(Subtleties, LaterIncarnationAnnouncementOrphansEarlierDependencies) {
  TestHarness h(3);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start();
  p->handle_app_msg(poisoned(h, 0, Entry{2, 9}));  // dep on (2,9)_1
  // P1 announces that incarnation 5 ended at index 7: incarnation 2 ended
  // at or before 7, so (2,9)_1 is rolled back and we are an orphan.
  p->handle_announcement(Announcement{1, Entry{5, 7}, true});
  EXPECT_EQ(p->rollbacks(), 1);
}

// The initial interval of a process started mid-history (Figure-1 style)
// is stable by fiat via its initial checkpoint, whatever its incarnation.
TEST(Subtleties, MidHistoryStartIsStableImmediately) {
  TestHarness h(2);
  auto p = h.make_process(0, ProtocolConfig{});
  p->start(Entry{3, 8});
  EXPECT_TRUE(p->log_table().of(0).covers(Entry{3, 8}));
  EXPECT_EQ(p->storage().durable_max_inc(), 3);
  // A crash right away recovers to exactly that point, announcing inc 3.
  p->crash();
  p->restart();
  EXPECT_EQ(h.announcements.back().ended, (Entry{3, 8}));
  EXPECT_EQ(p->current(), (Entry{4, 9}));
}

}  // namespace
}  // namespace koptlog
