// Forwarder: the manual harness lives in the library (core/manual.h) so the
// Figure-1 example and bench can reuse it; tests keep their historical name.
#pragma once

#include "core/manual.h"

namespace koptlog {
using TestHarness = ManualHarness;
}  // namespace koptlog
