// Threaded execution backend: ThreadedScheduler unit tests plus whole-run
// ThreadedCluster scenarios validated by the oracle-free trace audit.
// These run in their own executable (ctest label "threaded") so the
// sanitize script can put exactly this suite under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/failure_injector.h"
#include "exec/threaded_cluster.h"
#include "exec/threaded_scheduler.h"
#include "obs/audit.h"
#include "obs/trace_io.h"

namespace koptlog {
namespace {

// Virtual time compressed 50x against real time: a 400ms virtual load
// window takes 8ms of wall clock, and drain's parked periodic timers
// (up to the 100ms checkpoint interval) evaporate in ~2ms.
constexpr double kFastScale = 0.02;

void wait_executed(ThreadedScheduler& s, uint64_t n) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (s.executed() < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "worker stalled at " << s.executed() << "/" << n;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- MonotonicClock --------------------------------------------------------

TEST(MonotonicClockTest, AdvancesMonotonically) {
  MonotonicClock clock(kFastScale);
  SimTime a = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  SimTime b = clock.now();
  EXPECT_GE(b, a);
  // 2ms real at 0.02 real-us-per-virtual-us is 100ms virtual; allow a very
  // generous lower bound for scheduling noise.
  EXPECT_GE(b - a, 10'000);
}

TEST(MonotonicClockTest, RealDeadlineInvertsNow) {
  MonotonicClock clock(1.0);
  // The real point for virtual time t, read back through the clock's own
  // origin, is t again (up to integer truncation).
  auto rd = clock.real_deadline(5'000);
  MonotonicClock other(1.0);
  (void)other;
  EXPECT_GT(rd.time_since_epoch().count(), 0);
  clock.sleep_until(clock.now() + 1'000);
  EXPECT_GE(clock.now(), 1'000);
}

// --- ThreadedScheduler -----------------------------------------------------

TEST(ThreadedSchedulerTest, ExecutesInDeadlineOrder) {
  MonotonicClock clock(kFastScale);
  ThreadedScheduler sched(clock, "t");
  std::vector<int> order;
  sched.schedule_at(30'000, [&order] { order.push_back(3); });
  sched.schedule_at(10'000, [&order] { order.push_back(1); });
  sched.schedule_at(20'000, [&order] { order.push_back(2); });
  sched.start();
  wait_executed(sched, 3);
  sched.stop_and_join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadedSchedulerTest, SameDeadlineRunsInScheduleOrder) {
  MonotonicClock clock(kFastScale);
  ThreadedScheduler sched(clock, "t");
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sched.schedule_at(1'000, [&order, i] { order.push_back(i); });
  }
  sched.start();
  wait_executed(sched, 50);
  sched.stop_and_join();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadedSchedulerTest, PastDeadlinesRunImmediately) {
  MonotonicClock clock(kFastScale);
  ThreadedScheduler sched(clock, "t");
  sched.start();
  clock.sleep_until(clock.now() + 5'000);
  std::atomic<bool> ran{false};
  sched.schedule_at(0, [&ran] { ran.store(true); });  // long past
  wait_executed(sched, 1);
  EXPECT_TRUE(ran.load());
  sched.stop_and_join();
}

TEST(ThreadedSchedulerTest, TasksScheduleAcrossWorkers) {
  MonotonicClock clock(kFastScale);
  ThreadedScheduler a(clock, "a");
  ThreadedScheduler b(clock, "b");
  a.start();
  b.start();
  // Ping-pong a token between the two workers; each hop re-schedules onto
  // the other shard, exercising the cross-thread mailbox path.
  std::atomic<int> hops{0};
  std::function<void()> hop = [&] {
    int h = hops.fetch_add(1) + 1;
    if (h >= 10) return;
    ThreadedScheduler& next = (h % 2 == 0) ? a : b;
    next.schedule_at(clock.now() + 100, hop);
  };
  a.schedule_at(clock.now(), hop);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (hops.load() < 10) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  a.stop_and_join();
  b.stop_and_join();
  EXPECT_EQ(hops.load(), 10);
}

TEST(ThreadedSchedulerTest, ScheduleBatchRunsInSubmitOrder) {
  MonotonicClock clock(kFastScale);
  ThreadedScheduler sched(clock, "t");
  std::vector<int> order;
  std::vector<Scheduler::TimedAction> batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back({1'000, [&order, i] { order.push_back(i); }});
  }
  sched.schedule_batch(std::move(batch));
  sched.start();
  wait_executed(sched, 32);
  sched.stop_and_join();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  // One splice carried the whole chain into the inbox.
  EXPECT_GE(sched.mailbox_counters().batch_items.load(), 32u);
}

TEST(ThreadedSchedulerTest, ScheduleBatchRespectsDeadlinesAcrossItems) {
  MonotonicClock clock(kFastScale);
  ThreadedScheduler sched(clock, "t");
  std::vector<int> order;
  std::vector<Scheduler::TimedAction> batch;
  batch.push_back({30'000, [&order] { order.push_back(3); }});
  batch.push_back({10'000, [&order] { order.push_back(1); }});
  batch.push_back({20'000, [&order] { order.push_back(2); }});
  sched.schedule_batch(std::move(batch));
  sched.start();
  wait_executed(sched, 3);
  sched.stop_and_join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadedSchedulerTest, BoundedInboxStallsProducersWithoutLoss) {
  MonotonicClock clock(kFastScale);
  ThreadedScheduler sched(clock, "t", MailboxPolicy::kBatched,
                          /*capacity=*/16);
  sched.start();
  std::atomic<int> ran{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&sched, &ran] {
      for (int i = 0; i < kPerProducer; ++i) {
        sched.schedule_at(0, [&ran] { ran.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  wait_executed(sched, kProducers * kPerProducer);
  sched.stop_and_join();
  // Every submitted event ran exactly once — backpressure throttles, it
  // never sheds.
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
  const MailboxCounters& mc = sched.mailbox_counters();
  EXPECT_EQ(mc.pushes.load(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  // Four threads racing a 16-slot inbox on this machine must have hit the
  // bound at least once, and only external producers stall (no worker
  // submits here, so no soft overflows).
  EXPECT_GT(mc.producer_stalls.load(), 0u);
  EXPECT_EQ(mc.soft_overflows.load(), 0u);
}

TEST(ThreadedSchedulerTest, IdleAndExecutedDetectQuiescence) {
  MonotonicClock clock(kFastScale);
  ThreadedScheduler sched(clock, "t");
  sched.start();
  for (int i = 0; i < 20; ++i) {
    sched.schedule_at(clock.now() + i * 100, [] {});
  }
  wait_executed(sched, 20);
  // Quiet: idle twice with no executions in between.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    uint64_t before = sched.executed();
    if (sched.idle() && sched.executed() == before && sched.idle()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(sched.pending(), 0u);
  sched.stop_and_join();
}

// --- ThreadedCluster whole-run scenarios -----------------------------------

struct RunResult {
  AuditReport audit;
  int64_t crashes = 0;
  int64_t restarts = 0;
  int64_t rollbacks = 0;
  int64_t injected = 0;
  int64_t mailbox_stalls = 0;
  int64_t catchup_replayed = 0;
  int64_t tree_hops = 0;
  size_t outputs = 0;
};

std::string violations_of(const AuditReport& rep) {
  std::string out;
  for (const auto& v : rep.violations) out += v + "\n";
  return out;
}

RunResult run_threaded_uniform(int n, int shards, uint64_t seed, int k,
                               int failures, int injections,
                               size_t mailbox_capacity = 0,
                               int announce_fanout = 0) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.protocol.k = k;
  cfg.record_events = true;
  ThreadedOptions opt;
  opt.shards = shards;
  opt.time_scale = kFastScale;
  opt.mailbox_capacity = mailbox_capacity;
  opt.announce_fanout = announce_fanout;
  ThreadedCluster cluster(cfg, opt, make_uniform_app({}));
  cluster.start();
  const SimTime load_end = 400'000;
  inject_uniform_load(cluster, injections, 1'000, load_end, /*ttl=*/6,
                      seed + 1);
  if (failures > 0) {
    apply_failure_plan(cluster,
                       FailurePlan::random(Rng(seed).fork("fail"), n, failures,
                                           load_end / 10, load_end));
  }
  cluster.run_for(load_end);
  cluster.drain();
  cluster.shutdown();
  Trace trace;
  trace.n = cfg.n;
  trace.events = cluster.recording()->merged();
  RunResult r;
  r.audit = audit_trace(trace);
  r.crashes = cluster.stats().counter("crash.count");
  r.restarts = cluster.stats().counter("restart.count");
  r.rollbacks = cluster.stats().counter("rollback.count");
  r.injected = cluster.stats().counter("env.injected");
  r.mailbox_stalls = cluster.stats().counter("mailbox.producer_stalls");
  r.catchup_replayed = cluster.stats().counter("announce.catchup_replayed");
  r.tree_hops = cluster.stats().counter("announce.tree_hops");
  r.outputs = cluster.outputs().size();
  return r;
}

TEST(ThreadedClusterTest, CleanRunAuditsOkOnOneShard) {
  RunResult r = run_threaded_uniform(4, /*shards=*/1, /*seed=*/21, /*k=*/2,
                                     /*failures=*/0, /*injections=*/40);
  EXPECT_TRUE(r.audit.ok()) << violations_of(r.audit);
  EXPECT_GT(r.audit.events, 0u);
  EXPECT_GT(r.outputs, 0u);
  EXPECT_EQ(r.crashes, 0);
}

TEST(ThreadedClusterTest, CleanRunAuditsOkOnThreeShards) {
  RunResult r = run_threaded_uniform(6, /*shards=*/3, /*seed=*/22, /*k=*/2,
                                     /*failures=*/0, /*injections=*/60);
  EXPECT_TRUE(r.audit.ok()) << violations_of(r.audit);
  EXPECT_GT(r.outputs, 0u);
}

// The acceptance gate: randomized multi-failure runs audit with zero
// violations on at least two shard configurations (run under TSan via
// scripts/sanitize_tests.sh tsan).
TEST(ThreadedClusterTest, MultiFailureRunAuditsOkTwoShards) {
  RunResult r = run_threaded_uniform(4, /*shards=*/2, /*seed=*/31, /*k=*/1,
                                     /*failures=*/3, /*injections=*/60);
  EXPECT_TRUE(r.audit.ok()) << violations_of(r.audit);
  EXPECT_GE(r.crashes, 1);
  EXPECT_EQ(r.crashes, r.restarts);
  EXPECT_GT(r.audit.announcements, 0u);
}

TEST(ThreadedClusterTest, MultiFailureRunAuditsOkFourShards) {
  RunResult r = run_threaded_uniform(8, /*shards=*/4, /*seed=*/32, /*k=*/1,
                                     /*failures=*/3, /*injections=*/80);
  EXPECT_TRUE(r.audit.ok()) << violations_of(r.audit);
  EXPECT_GE(r.crashes, 1);
  EXPECT_EQ(r.crashes, r.restarts);
}

TEST(ThreadedClusterTest, UnboundedKMultiFailureAuditsOk) {
  RunResult r = run_threaded_uniform(6, /*shards=*/3, /*seed=*/33,
                                     ProtocolConfig::kUnboundedK,
                                     /*failures=*/2, /*injections=*/60);
  EXPECT_TRUE(r.audit.ok()) << violations_of(r.audit);
}

// Bounded-inbox flood: 200 injections against 8-slot shard inboxes. The
// driver thread must throttle (stall counter moves through Stats), yet
// every injected message survives and the trace audits clean.
TEST(ThreadedClusterTest, BoundedMailboxFloodThrottlesWithoutLoss) {
  RunResult r = run_threaded_uniform(4, /*shards=*/2, /*seed=*/41, /*k=*/2,
                                     /*failures=*/0, /*injections=*/200,
                                     /*mailbox_capacity=*/8);
  EXPECT_TRUE(r.audit.ok()) << violations_of(r.audit);
  EXPECT_EQ(r.injected, 200);
  EXPECT_GT(r.mailbox_stalls, 0);
  EXPECT_GT(r.outputs, 0u);
  EXPECT_EQ(r.crashes, 0);
}

// 8-shard randomized multi-failure stress: the widest shard fan the
// blockwise split supports at n=16, five random crash/restart cycles per
// seed, audited per run. Runs under TSan via scripts/sanitize_tests.sh.
TEST(ThreadedClusterTest, EightShardRandomizedMultiFailureStress) {
  for (uint64_t seed : {uint64_t{51}, uint64_t{52}}) {
    RunResult r = run_threaded_uniform(16, /*shards=*/8, seed, /*k=*/2,
                                       /*failures=*/5, /*injections=*/200);
    EXPECT_TRUE(r.audit.ok())
        << "seed " << seed << "\n"
        << violations_of(r.audit);
    EXPECT_GE(r.crashes, 1);
    EXPECT_EQ(r.crashes, r.restarts);
    EXPECT_GE(r.catchup_replayed, 0);
  }
}

// --- tree-based announcement dissemination ---------------------------------
//
// With --announce-fanout D >= 1 the origin shard hands announcements to a
// D-ary tree over the shards instead of messaging every shard directly.
// Each non-origin shard still receives every announcement exactly once, so
// total hops per broadcast are S-1 — same delivery, origin cost O(D).

TEST(ThreadedClusterTest, TreeDisseminationCleanRunAuditsOk) {
  RunResult r = run_threaded_uniform(8, /*shards=*/4, /*seed=*/61, /*k=*/2,
                                     /*failures=*/0, /*injections=*/80,
                                     /*mailbox_capacity=*/0,
                                     /*announce_fanout=*/2);
  EXPECT_TRUE(r.audit.ok()) << violations_of(r.audit);
  EXPECT_GT(r.outputs, 0u);
  // No failures -> no announcements -> nothing for the tree to forward.
  EXPECT_EQ(r.tree_hops, 0);
}

TEST(ThreadedClusterTest, TreeDisseminationChainFanoutAuditsOk) {
  // D=1 degenerates to a relay chain across the shards — the deepest tree,
  // the harshest ordering test for multi-hop delivery.
  RunResult r = run_threaded_uniform(8, /*shards=*/4, /*seed=*/62, /*k=*/1,
                                     /*failures=*/2, /*injections=*/80,
                                     /*mailbox_capacity=*/0,
                                     /*announce_fanout=*/1);
  EXPECT_TRUE(r.audit.ok()) << violations_of(r.audit);
  EXPECT_GE(r.crashes, 1);
  EXPECT_EQ(r.crashes, r.restarts);
  EXPECT_GT(r.tree_hops, 0);
}

// The acceptance gate for the tree path: randomized multi-failure runs on
// the widest shard fan, with restarts forcing announcement catch-up while
// later announcements are still traversing tree hops. Runs under TSan via
// scripts/sanitize_tests.sh tsan.
TEST(ThreadedClusterTest, TreeDisseminationMultiFailureRestartCatchUp) {
  for (uint64_t seed : {uint64_t{71}, uint64_t{72}}) {
    RunResult r = run_threaded_uniform(16, /*shards=*/8, seed, /*k=*/2,
                                       /*failures=*/5, /*injections=*/200,
                                       /*mailbox_capacity=*/0,
                                       /*announce_fanout=*/2);
    EXPECT_TRUE(r.audit.ok())
        << "seed " << seed << "\n"
        << violations_of(r.audit);
    EXPECT_GE(r.crashes, 1);
    EXPECT_EQ(r.crashes, r.restarts);
    EXPECT_GT(r.tree_hops, 0);
    EXPECT_GT(r.audit.announcements, 0u);
  }
}

TEST(ThreadedClusterTest, ShardPartitionIsBlockwise) {
  ClusterConfig cfg;
  cfg.n = 6;
  ThreadedOptions opt;
  opt.shards = 2;
  opt.time_scale = kFastScale;
  ThreadedCluster cluster(cfg, opt, make_uniform_app({}));
  EXPECT_EQ(cluster.shards(), 2);
  EXPECT_EQ(cluster.shard_of_pid(0), 0);
  EXPECT_EQ(cluster.shard_of_pid(2), 0);
  EXPECT_EQ(cluster.shard_of_pid(3), 1);
  EXPECT_EQ(cluster.shard_of_pid(5), 1);
}

TEST(ThreadedClusterTest, StatsRequireShutdownThenMerge) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.record_events = true;
  ThreadedOptions opt;
  opt.shards = 2;
  opt.time_scale = kFastScale;
  ThreadedCluster cluster(cfg, opt, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 20, 1'000, 100'000, 5, 9);
  cluster.run_for(100'000);
  cluster.drain();
  cluster.shutdown();
  // Per-process bags merged: the cluster-wide delivery count is visible.
  EXPECT_GT(cluster.stats().counter("msgs.delivered"), 0);
  EXPECT_GT(cluster.stats().counter("env.injected"), 0);
}

// --- Cross-shard recovery: both backends, same scenario, same verdict ------
//
// Pipeline workload (P0 -> P1 -> ... -> Pn-1), K=1, one failure at P0.
// With K=1 P0's sends may depend on one unlogged interval, so its crash
// orphans downstream state: processes on the *other* shard (P2, P3 under
// the blockwise 2-shard split) roll back and revoke held messages. Both
// backends must come out of it with a clean audit. The flush interval is
// stretched to 50ms so a crash reliably lands inside the vulnerable
// window between flushes.

ClusterConfig pipeline_crash_config(uint64_t seed) {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = seed;
  cfg.protocol.k = 1;
  cfg.protocol.flush_interval_us = 50'000;
  cfg.record_events = true;
  return cfg;
}

AuditReport run_sim_pipeline_crash(uint64_t seed, int64_t* rollbacks,
                                   size_t* holds) {
  ClusterConfig cfg = pipeline_crash_config(seed);
  cfg.enable_oracle = false;
  Cluster cluster(cfg, make_pipeline_app({}));
  cluster.start();
  inject_pipeline_load(cluster, 40, 1'000, 300'000);
  cluster.fail_at(120'000, 0);
  cluster.run_for(900'000);
  cluster.drain();
  if (rollbacks) *rollbacks = cluster.stats().counter("rollback.count");
  Trace trace;
  trace.n = cfg.n;
  trace.events = cluster.recording()->merged();
  if (holds) {
    *holds = 0;
    for (const ProtocolEvent& e : trace.events) {
      if (e.kind == EventKind::kBufferHold) ++*holds;
    }
  }
  return audit_trace(trace);
}

AuditReport run_threaded_pipeline_crash(uint64_t seed, int64_t* crashes) {
  ClusterConfig cfg = pipeline_crash_config(seed);
  ThreadedOptions opt;
  opt.shards = 2;
  opt.time_scale = kFastScale;
  ThreadedCluster cluster(cfg, opt, make_pipeline_app({}));
  // P0 (the failing stage) is on shard 0; the tail stages are on shard 1.
  EXPECT_EQ(cluster.shard_of_pid(0), 0);
  EXPECT_EQ(cluster.shard_of_pid(3), 1);
  cluster.start();
  inject_pipeline_load(cluster, 40, 1'000, 300'000);
  cluster.fail_at(120'000, 0);
  cluster.run_for(450'000);
  cluster.drain();
  cluster.shutdown();
  if (crashes) *crashes = cluster.stats().counter("crash.count");
  Trace trace;
  trace.n = cfg.n;
  trace.events = cluster.recording()->merged();
  return audit_trace(trace);
}

TEST(CrossShardRecoveryTest, BothBackendsAuditIdenticallyClean) {
  int64_t sim_rollbacks = 0;
  size_t sim_holds = 0;
  AuditReport sim_rep = run_sim_pipeline_crash(11, &sim_rollbacks, &sim_holds);
  EXPECT_TRUE(sim_rep.ok()) << violations_of(sim_rep);
  // The deterministic run pins the scenario's substance: the crash caused
  // downstream rollbacks and the K bound held messages back at some point.
  EXPECT_GE(sim_rollbacks, 1);
  EXPECT_GE(sim_holds, 1u);
  EXPECT_GT(sim_rep.announcements, 0u);

  int64_t thr_crashes = 0;
  AuditReport thr_rep = run_threaded_pipeline_crash(11, &thr_crashes);
  EXPECT_TRUE(thr_rep.ok()) << violations_of(thr_rep);
  EXPECT_EQ(thr_crashes, 1);
  EXPECT_GT(thr_rep.announcements, 0u);

  // Identical verdicts: the nondeterministic backend earns the same clean
  // bill of health the deterministic one does.
  EXPECT_EQ(sim_rep.ok(), thr_rep.ok());
}

// --- durable storage under the threaded backend -----------------------------

// --storage=disk with threaded_io: file writes and fsyncs run on per-process
// flusher threads, completions ride the thread-safe schedule_at back onto
// the owning shard, and shutdown() quiesces the flushers before stopping
// the shard event loops. Runs under TSan via scripts/sanitize_tests.sh.
TEST(ThreadedClusterTest, DiskBackendMultiFailureRunAuditsOk) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "koptlog_threaded_disk_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ClusterConfig cfg;
  cfg.n = 4;
  cfg.seed = 41;
  cfg.protocol.k = 1;
  cfg.record_events = true;
  cfg.protocol.storage_backend.backend = "disk";
  cfg.protocol.storage_backend.dir = dir.string();
  cfg.protocol.storage_backend.threaded_io = true;
  ThreadedOptions opt;
  opt.shards = 2;
  opt.time_scale = kFastScale;
  ThreadedCluster cluster(cfg, opt, make_uniform_app({}));
  cluster.start();
  const SimTime load_end = 400'000;
  inject_uniform_load(cluster, 60, 1'000, load_end, /*ttl=*/6, 42);
  apply_failure_plan(cluster, FailurePlan::random(Rng(41).fork("fail"), cfg.n,
                                                  2, load_end / 10, load_end));
  cluster.run_for(load_end);
  cluster.drain();
  cluster.shutdown();

  Trace trace;
  trace.n = cfg.n;
  trace.events = cluster.recording()->merged();
  AuditReport rep = audit_trace(trace);
  EXPECT_TRUE(rep.ok()) << violations_of(rep);
  EXPECT_GT(rep.events, 0u);
  EXPECT_GT(cluster.outputs().size(), 0u);
  // The durable backend really ran: fsyncs happened and flush completions
  // carried durable LSNs into the trace.
  EXPECT_GT(cluster.stats().counter("storage.fsyncs"), 0);
  size_t flush_events = 0;
  for (const ProtocolEvent& e : trace.events)
    flush_events += (e.kind == EventKind::kStorageFlush);
  EXPECT_GT(flush_events, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace koptlog
