// Timeline rendering tests: ASCII lanes and Graphviz export from the
// oracle's interval graph.
#include <gtest/gtest.h>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/timeline.h"

namespace koptlog {
namespace {

Oracle make_small_history() {
  Oracle o(2);
  o.on_process_start(IntervalId{0, 0, 1}, 1);
  o.on_process_start(IntervalId{1, 0, 1}, 2);
  o.on_interval_start(IntervalId{0, 0, 2}, IntervalId{kEnvironment, 0, 0}, 3);
  o.on_interval_start(IntervalId{1, 0, 2}, IntervalId{0, 0, 2}, 4);
  o.on_stable_watermark(0, Entry{0, 2}, 10);
  o.on_crash(1, 1);
  return o;
}

TEST(TimelineTest, AsciiShowsLanesAndMarkers) {
  Oracle o = make_small_history();
  std::string s = to_ascii(o);
  EXPECT_NE(s.find("P0 |"), std::string::npos);
  EXPECT_NE(s.find("P1 |"), std::string::npos);
  EXPECT_NE(s.find("#(0,2)"), std::string::npos);  // stable
  EXPECT_NE(s.find("!(0,2)"), std::string::npos);  // lost at P1
  EXPECT_NE(s.find("*(0,1)"), std::string::npos);  // initial/recovery
}

TEST(TimelineTest, AsciiCapTruncatesLongLanes) {
  Oracle o(1);
  o.on_process_start(IntervalId{0, 0, 1}, 0);
  for (Sii x = 2; x <= 40; ++x)
    o.on_interval_start(IntervalId{0, 0, x}, IntervalId{kEnvironment, 0, 0}, 0);
  TimelineOptions opts;
  opts.ascii_max_per_process = 5;
  std::string s = to_ascii(o, opts);
  EXPECT_NE(s.find("more"), std::string::npos);
  EXPECT_EQ(s.find("(0,10)"), std::string::npos);
}

TEST(TimelineTest, DotContainsNodesEdgesAndStyles) {
  Oracle o = make_small_history();
  std::string s = to_dot(o);
  EXPECT_NE(s.find("digraph koptlog"), std::string::npos);
  EXPECT_NE(s.find("subgraph cluster_p0"), std::string::npos);
  // Chain edge P0 (0,1) -> (0,2):
  EXPECT_NE(s.find("p0_i0_x1 -> p0_i0_x2"), std::string::npos);
  // Message edge P0 (0,2) -> P1 (0,2), dashed:
  EXPECT_NE(s.find("p0_i0_x2 -> p1_i0_x2 [style=dashed"), std::string::npos);
  // Stable fill and lost fill:
  EXPECT_NE(s.find("#aed581"), std::string::npos);
  EXPECT_NE(s.find("#e57373"), std::string::npos);
}

TEST(TimelineTest, EndToEndClusterRunRenders) {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.seed = 5;
  cfg.enable_oracle = true;
  Cluster cluster(cfg, make_uniform_app({}));
  cluster.start();
  inject_uniform_load(cluster, 10, 1'000, 50'000, 5, 7);
  cluster.fail_at(30'000, 1);
  cluster.run_for(300'000);
  cluster.drain();
  std::string ascii = to_ascii(*cluster.oracle());
  std::string dot = to_dot(*cluster.oracle());
  EXPECT_NE(ascii.find("P2 |"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // Something was lost or undone in the failure:
  EXPECT_TRUE(ascii.find('!') != std::string::npos ||
              ascii.find('~') != std::string::npos);
}

}  // namespace
}  // namespace koptlog
