// Golden-file regression for the JSONL trace schema: the seeded Figure-1
// script (same steps as tests/figure1_test.cpp / bench_e1) must produce a
// byte-identical event trace across runs and across refactors. The golden
// file doubles as the schema's human-readable exemplar, referenced from
// DESIGN.md. Regenerate deliberately with:
//
//   KOPTLOG_REGEN_GOLDEN=1 ./koptlog_tests --gtest_filter='TraceGolden.*'
//
// and review the diff like any other behavior change. The same trace is
// also audited here: Theorems 1-4 must hold on Figure 1 with no oracle.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/manual.h"
#include "obs/audit.h"
#include "obs/trace_io.h"

#ifndef KOPTLOG_TEST_DIR
#define KOPTLOG_TEST_DIR "."
#endif

namespace koptlog {
namespace {

/// The Figure-1 walkthrough (paper §2-§3), recorded. Mirrors bench_e1.
std::string figure1_trace_jsonl() {
  ManualHarness h(6);
  h.enable_event_recording();
  std::vector<std::unique_ptr<Process>> p;
  for (ProcessId pid = 0; pid < 6; ++pid)
    p.push_back(h.make_process(pid, ProtocolConfig{}));
  p[0]->start(Entry{1, 2});
  p[1]->start(Entry{0, 1});
  p[2]->start(Entry{0, 1});
  p[3]->start(Entry{2, 5});
  p[4]->start(Entry{0, 1});
  p[5]->start(Entry{3, 8});
  h.tick(*p[1]);
  h.tick(*p[1]);
  h.tick(*p[2]);

  // m0 -> m1 -> m2 causal chain; P4's interval (0,2)_4 emits an output.
  AppPayload chain;
  chain.kind = ScriptedApp::kChain;
  chain.a = ScriptedApp::route({1, 3, 4});
  chain.b = 1;
  chain.c = 77;
  p[0]->handle_app_msg(h.env_msg(0, chain));
  p[1]->handle_app_msg(h.take_sent());
  p[3]->handle_app_msg(h.take_sent());
  AppMsg m2 = h.take_sent();
  p[4]->handle_app_msg(m2);

  // P1 makes (0,4)_1 stable, executes (0,5)_1, fails at "X", recovers.
  p[1]->force_flush();
  AppPayload c2;
  c2.kind = ScriptedApp::kChain;
  c2.a = ScriptedApp::route({3});
  p[1]->handle_app_msg(h.env_msg(1, c2));
  p[3]->handle_app_msg(h.take_sent());
  h.tick(*p[3]);
  p[1]->crash();
  p[1]->restart();
  Announcement r1 = h.announcements.back();

  // r1 reaches P3 (rollback) and P4 (survives; m6 released from hold).
  p[3]->handle_announcement(r1);
  AppPayload c5;
  c5.kind = ScriptedApp::kChain;
  c5.a = ScriptedApp::route({1, 4});
  p[2]->handle_app_msg(h.env_msg(2, c5));
  p[1]->handle_app_msg(h.take_sent());
  p[4]->handle_app_msg(h.take_sent());  // m6: held behind P1's old entry
  p[4]->handle_announcement(r1);

  // m7 delivered at P5 with no delay (Corollary 1).
  AppPayload c3;
  c3.kind = ScriptedApp::kChain;
  c3.a = ScriptedApp::route({5});
  p[1]->handle_app_msg(h.env_msg(1, c3));
  p[5]->handle_app_msg(h.take_sent());

  // P4's output commit after the three logging-progress notifications.
  p[4]->force_flush();
  p[0]->force_flush();
  p[0]->broadcast_progress();
  p[4]->handle_log_progress(h.progresses.back());
  p[3]->force_flush();
  p[3]->broadcast_progress();
  p[4]->handle_log_progress(h.progresses.back());
  EXPECT_EQ(h.outputs.size(), 1u);

  std::ostringstream os;
  write_trace_jsonl(*h.recording(), os);
  return os.str();
}

std::string golden_path() {
  return std::string(KOPTLOG_TEST_DIR) + "/golden/figure1_trace.jsonl";
}

TEST(TraceGolden, Figure1TraceIsStable) {
  std::string actual = figure1_trace_jsonl();
  if (std::getenv("KOPTLOG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path()
      << " — run with KOPTLOG_REGEN_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  std::string expected = buf.str();
  ASSERT_EQ(actual.size(), expected.size())
      << "trace length changed; regenerate deliberately with "
         "KOPTLOG_REGEN_GOLDEN=1 and review the diff";
  EXPECT_EQ(actual, expected);
}

TEST(TraceGolden, Figure1TraceIsDeterministicAcrossRuns) {
  EXPECT_EQ(figure1_trace_jsonl(), figure1_trace_jsonl());
}

TEST(TraceGolden, Figure1TracePassesAuditWithoutOracle) {
  std::istringstream is(figure1_trace_jsonl());
  std::vector<std::string> errors;
  Trace trace = read_trace_jsonl(is, errors);
  ASSERT_TRUE(errors.empty()) << errors[0];
  EXPECT_EQ(trace.n, 6);
  AuditReport report = audit_trace(trace);
  EXPECT_TRUE(report.ok()) << report.summary();
  // Figure 1's story is all here: P1's failure announcement, the orphan
  // interval (0,5)_1 it kills, P3's rollback, and P4's committed output.
  EXPECT_EQ(report.announcements, 1u);
  EXPECT_GT(report.dead_intervals, 0u);
  EXPECT_GE(report.rollbacks, 1u);
  EXPECT_EQ(report.distinct_outputs, 1u);
  EXPECT_GE(report.commits_checked, 1u);
}

}  // namespace
}  // namespace koptlog
