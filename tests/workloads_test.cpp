// Workload application tests: PWD determinism (same inputs -> same state,
// same sends), snapshot/restore round-trips, and shape checks per workload.
#include <gtest/gtest.h>

#include <vector>

#include "app/workloads.h"

namespace koptlog {
namespace {

/// Minimal AppContext that records what a handler produced.
class RecordingContext final : public AppContext {
 public:
  RecordingContext(ProcessId self, int n) : self_(self), n_(n) {}

  void send(ProcessId to, const AppPayload& payload) override {
    sends.emplace_back(to, payload);
  }
  void send_with_k(ProcessId to, const AppPayload& payload, int) override {
    sends.emplace_back(to, payload);
  }
  void output(const AppPayload& payload) override {
    outputs.push_back(payload);
  }
  ProcessId self() const override { return self_; }
  int system_size() const override { return n_; }

  std::vector<std::pair<ProcessId, AppPayload>> sends;
  std::vector<AppPayload> outputs;

 private:
  ProcessId self_;
  int n_;
};

AppPayload token(int64_t a, int32_t ttl) {
  AppPayload p;
  p.kind = kToken;
  p.a = a;
  p.ttl = ttl;
  return p;
}

TEST(UniformAppTest, DeterministicReplay) {
  auto factory = make_uniform_app({});
  auto app1 = factory(0);
  auto app2 = factory(0);
  RecordingContext ctx1(0, 4), ctx2(0, 4);
  for (int i = 0; i < 20; ++i) {
    app1->on_deliver(ctx1, (i * 7) % 4, token(i * 1234567, 5));
    app2->on_deliver(ctx2, (i * 7) % 4, token(i * 1234567, 5));
  }
  EXPECT_EQ(app1->state_hash(), app2->state_hash());
  ASSERT_EQ(ctx1.sends.size(), ctx2.sends.size());
  for (size_t i = 0; i < ctx1.sends.size(); ++i) {
    EXPECT_EQ(ctx1.sends[i].first, ctx2.sends[i].first);
    EXPECT_EQ(ctx1.sends[i].second, ctx2.sends[i].second);
  }
}

TEST(UniformAppTest, OrderSensitivity) {
  auto factory = make_uniform_app({});
  auto app1 = factory(0);
  auto app2 = factory(0);
  RecordingContext ctx(0, 4);
  app1->on_deliver(ctx, 1, token(10, 0));
  app1->on_deliver(ctx, 2, token(20, 0));
  app2->on_deliver(ctx, 2, token(20, 0));
  app2->on_deliver(ctx, 1, token(10, 0));
  EXPECT_NE(app1->state_hash(), app2->state_hash());
}

TEST(UniformAppTest, TtlBoundsPropagation) {
  auto app = make_uniform_app({.extra_send_denominator = 0})(0);
  RecordingContext ctx(0, 4);
  app->on_deliver(ctx, 1, token(5, 0));  // ttl exhausted: no forwarding
  EXPECT_TRUE(ctx.sends.empty());
  app->on_deliver(ctx, 1, token(5, 3));
  ASSERT_EQ(ctx.sends.size(), 1u);
  EXPECT_EQ(ctx.sends[0].second.ttl, 2);
  EXPECT_NE(ctx.sends[0].first, 0);  // never self
}

TEST(UniformAppTest, SnapshotRestoreRoundTrip) {
  auto factory = make_uniform_app({});
  auto app = factory(0);
  RecordingContext ctx(0, 4);
  for (int i = 0; i < 10; ++i) app->on_deliver(ctx, 1, token(i, 2));
  auto snap = app->snapshot();
  uint64_t hash = app->state_hash();
  for (int i = 0; i < 5; ++i) app->on_deliver(ctx, 2, token(i, 2));
  EXPECT_NE(app->state_hash(), hash);
  app->restore(snap);
  EXPECT_EQ(app->state_hash(), hash);
}

TEST(UniformAppTest, OutputsEveryKthDelivery) {
  auto app = make_uniform_app({.extra_send_denominator = 0, .output_every = 3})(0);
  RecordingContext ctx(0, 4);
  for (int i = 1; i <= 9; ++i) app->on_deliver(ctx, 1, token(i, 0));
  EXPECT_EQ(ctx.outputs.size(), 3u);
}

TEST(PipelineAppTest, ForwardsToNextStageOnly) {
  auto factory = make_pipeline_app({});
  auto mid = factory(1);
  RecordingContext ctx(1, 4);
  AppPayload item;
  item.kind = kPipeItem;
  item.a = 5;
  item.b = 0;
  mid->on_deliver(ctx, 0, item);
  ASSERT_EQ(ctx.sends.size(), 1u);
  EXPECT_EQ(ctx.sends[0].first, 2);
  EXPECT_TRUE(ctx.outputs.empty());
}

TEST(PipelineAppTest, LastStageEmitsOutput) {
  auto factory = make_pipeline_app({.output_every = 1});
  auto last = factory(3);
  RecordingContext ctx(3, 4);
  AppPayload item;
  item.kind = kPipeItem;
  item.a = 5;
  item.b = 9;
  last->on_deliver(ctx, 2, item);
  EXPECT_TRUE(ctx.sends.empty());
  ASSERT_EQ(ctx.outputs.size(), 1u);
  EXPECT_EQ(ctx.outputs[0].b, 9);
}

TEST(ClientServerAppTest, RemoteOwnerRoundTrip) {
  auto factory = make_client_server_app({.output_every = 1});
  auto frontend = factory(0);
  RecordingContext fctx(0, 4);
  AppPayload req;
  req.kind = kRequest;
  req.a = 5;  // owner = 5 % 4 = 1 != 0
  frontend->on_deliver(fctx, kEnvironment, req);
  ASSERT_EQ(fctx.sends.size(), 1u);
  EXPECT_EQ(fctx.sends[0].first, 1);
  EXPECT_EQ(fctx.sends[0].second.kind, kSubRequest);
  EXPECT_EQ(fctx.sends[0].second.b, 0);  // reply-to

  auto owner = factory(1);
  RecordingContext octx(1, 4);
  owner->on_deliver(octx, 0, fctx.sends[0].second);
  ASSERT_EQ(octx.sends.size(), 1u);
  EXPECT_EQ(octx.sends[0].first, 0);
  EXPECT_EQ(octx.sends[0].second.kind, kReply);

  frontend->on_deliver(fctx, 1, octx.sends[0].second);
  EXPECT_EQ(fctx.outputs.size(), 1u);
}

TEST(ClientServerAppTest, LocalOwnerAnswersDirectly) {
  auto app = make_client_server_app({.output_every = 1})(2);
  RecordingContext ctx(2, 4);
  AppPayload req;
  req.kind = kRequest;
  req.a = 6;  // owner = 6 % 4 = 2 == self
  app->on_deliver(ctx, kEnvironment, req);
  EXPECT_TRUE(ctx.sends.empty());
  EXPECT_EQ(ctx.outputs.size(), 1u);
}

TEST(ClientServerAppTest, SnapshotIncludesReplyCounter) {
  auto factory = make_client_server_app({.output_every = 2});
  auto app = factory(2);
  RecordingContext ctx(2, 4);
  AppPayload req;
  req.kind = kRequest;
  req.a = 6;
  app->on_deliver(ctx, kEnvironment, req);  // 1 reply, no output yet
  EXPECT_TRUE(ctx.outputs.empty());
  auto snap = app->snapshot();
  uint64_t hash = app->state_hash();

  auto clone = factory(2);
  clone->restore(snap);
  EXPECT_EQ(clone->state_hash(), hash);
  // The restored counter continues: the next reply is the 2nd -> output.
  RecordingContext cctx(2, 4);
  clone->on_deliver(cctx, kEnvironment, req);
  EXPECT_EQ(cctx.outputs.size(), 1u);
}

TEST(HashChainAppTest, SnapshotIsCompact) {
  auto app = make_uniform_app({})(0);
  EXPECT_EQ(app->snapshot().size(), 16u);
}

}  // namespace
}  // namespace koptlog
