// koptlog_audit — post-hoc orphan audit: replays a JSONL protocol-event
// trace (koptlog_sim --trace-out, or any conforming producer) and
// re-verifies the paper's guarantees from the events alone — no oracle, no
// access to the run:
//   * no committed output depends, transitively, on a state interval later
//     announced lost (Theorems 1-3), and
//   * every send-buffer release honored its K bound (Theorem 4),
// plus incarnation accounting and stream sanity (see src/obs/audit.h).
//
//   koptlog_sim --n 6 --failures 2 --trace-out run.jsonl
//   koptlog_audit run.jsonl
//
// Exit status: 0 clean, 1 schema errors or invariant violations, 2 usage.
#include <fstream>
#include <iostream>
#include <string>

#include "obs/audit.h"
#include "obs/trace_io.h"

using namespace koptlog;

namespace {

[[noreturn]] void usage() {
  std::cout
      << "usage: koptlog_audit [options] TRACE.jsonl\n"
      << "  --parse-only   validate the JSONL schema only; skip the audit\n"
      << "  --quiet        print nothing on success\n"
      << "  -              read the trace from stdin\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  bool parse_only = false;
  bool quiet = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string f = argv[i];
    if (f == "--parse-only") parse_only = true;
    else if (f == "--quiet") quiet = true;
    else if (f == "--help" || f == "-h") usage();
    else if (!path.empty()) usage();
    else path = f;
  }
  if (path.empty()) usage();

  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "koptlog_audit: cannot open " << path << "\n";
      return 2;
    }
    in = &file;
  }

  std::vector<std::string> errors;
  Trace trace = read_trace_jsonl(*in, errors);
  if (!errors.empty()) {
    std::cerr << "koptlog_audit: " << errors.size() << " schema error(s) in "
              << path << ":\n";
    size_t shown = 0;
    for (const std::string& e : errors) {
      if (++shown > 20) {
        std::cerr << "  ... (" << errors.size() - 20 << " more)\n";
        break;
      }
      std::cerr << "  " << e << "\n";
    }
    return 1;
  }
  if (parse_only) {
    if (!quiet)
      std::cout << "schema OK: " << trace.events.size() << " events, n="
                << trace.n << "\n";
    return 0;
  }

  AuditReport rep = audit_trace(trace);
  if (!rep.ok()) {
    std::cerr << rep.summary() << "\n";
    size_t shown = 0;
    for (const std::string& v : rep.violations) {
      if (++shown > 20) {
        std::cerr << "  ... (" << rep.violations.size() - 20 << " more)\n";
        break;
      }
      std::cerr << "  " << v << "\n";
    }
    return 1;
  }
  if (!quiet) std::cout << rep.summary() << "\n";
  return 0;
}
