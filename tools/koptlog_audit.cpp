// koptlog_audit — post-hoc orphan audit: replays a JSONL protocol-event
// trace (koptlog_sim --trace-out, or any conforming producer) and
// re-verifies the paper's guarantees from the events alone — no oracle, no
// access to the run:
//   * no committed output depends, transitively, on a state interval later
//     announced lost (Theorems 1-3), and
//   * every send-buffer release honored its K bound (Theorem 4),
// plus incarnation accounting and stream sanity (see src/obs/audit.h).
//
//   koptlog_sim --n 6 --failures 2 --trace-out run.jsonl
//   koptlog_audit run.jsonl
//
// Traces written by a live collector can end mid-line (crash, kill -9, or
// simply a write racing this reader). A torn final line is reported but is
// never a failure on its own — only schema errors in the body or real
// invariant violations are.
//
// --follow tails a growing file, feeding the online auditor (the same one
// koptlog_sim --live-audit runs in-process) and exits nonzero the moment a
// violation appears, citing the offending event's stable id. It stops once
// the file has been idle for --idle-timeout-ms.
//
// Exit status: 0 clean, 1 schema errors or invariant violations, 2 usage.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/audit.h"
#include "obs/live_audit.h"
#include "obs/trace_io.h"

using namespace koptlog;

namespace {

[[noreturn]] void usage() {
  std::cout
      << "usage: koptlog_audit [options] TRACE.jsonl\n"
      << "  --parse-only          validate the JSONL schema only; skip the "
         "audit\n"
      << "  --quiet               print nothing on success\n"
      << "  --follow              tail a growing trace, auditing online; "
         "exits 1\n"
      << "                        on the first violation (cites the event "
         "id)\n"
      << "  --idle-timeout-ms N   stop following after N ms without growth "
         "(3000)\n"
      << "  -                     read the trace from stdin\n";
  std::exit(2);
}

int print_errors(const std::string& path,
                 const std::vector<std::string>& errors) {
  std::cerr << "koptlog_audit: " << errors.size() << " schema error(s) in "
            << path << ":\n";
  size_t shown = 0;
  for (const std::string& e : errors) {
    if (++shown > 20) {
      std::cerr << "  ... (" << errors.size() - 20 << " more)\n";
      break;
    }
    std::cerr << "  " << e << "\n";
  }
  return 1;
}

void warn_torn(const std::string& path, const StreamingTraceParser& parser) {
  if (!parser.torn_tail().empty()) {
    std::cerr << "koptlog_audit: warning: " << path
              << " ends mid-line (" << parser.torn_tail().size()
              << " bytes of torn final line ignored)\n";
  }
}

int follow(const std::string& path, bool quiet, int64_t idle_timeout_ms) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "koptlog_audit: cannot open " << path << "\n";
    return 2;
  }

  // n isn't known until the meta header parses; size the auditor lazily and
  // hold any events that land in the same read chunk as the header.
  std::unique_ptr<LiveAudit> audit;
  std::vector<ProtocolEvent> pending;
  StreamingTraceParser parser([&](const ProtocolEvent& e) {
    if (audit != nullptr) audit->on_event(e);
    else pending.push_back(e);
  });

  using Clock = std::chrono::steady_clock;
  auto last_growth = Clock::now();
  char buf[1 << 16];
  bool done = false;
  while (!done) {
    bool grew = false;
    for (;;) {
      file.read(buf, sizeof buf);
      std::streamsize got = file.gcount();
      if (got <= 0) break;
      grew = true;
      parser.feed(std::string_view(buf, (size_t)got));
      if (audit == nullptr && parser.have_meta()) {
        audit = std::make_unique<LiveAudit>(parser.n());
        for (const ProtocolEvent& e : pending) audit->on_event(e);
        pending.clear();
      }
      if (!parser.errors().empty()) return print_errors(path, parser.errors());
      if (audit != nullptr && !audit->ok()) {
        std::cerr << "koptlog_audit: VIOLATION after "
                  << audit->events_seen() << " events:\n  "
                  << audit->first_violation() << "\n";
        return 1;
      }
    }
    if (grew) {
      last_growth = Clock::now();
    } else if (Clock::now() - last_growth >
               std::chrono::milliseconds(idle_timeout_ms)) {
      done = true;
    }
    if (!done) {
      file.clear();  // drop eofbit so the next read sees appended bytes
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  parser.finish();
  if (!parser.errors().empty()) return print_errors(path, parser.errors());
  warn_torn(path, parser);
  if (audit == nullptr) {
    std::cerr << "koptlog_audit: " << path << ": no meta header seen\n";
    return 1;
  }
  AuditReport rep = audit->report();
  if (!rep.ok()) {
    std::cerr << rep.summary() << "\n  " << audit->first_violation() << "\n";
    return 1;
  }
  if (!quiet) std::cout << rep.summary() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool parse_only = false;
  bool quiet = false;
  bool do_follow = false;
  int64_t idle_timeout_ms = 3000;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string f = argv[i];
    if (f == "--parse-only") parse_only = true;
    else if (f == "--quiet") quiet = true;
    else if (f == "--follow") do_follow = true;
    else if (f == "--idle-timeout-ms" && i + 1 < argc)
      idle_timeout_ms = std::stoll(argv[++i]);
    else if (f == "--help" || f == "-h") usage();
    else if (!path.empty()) usage();
    else path = f;
  }
  if (path.empty()) usage();
  if (do_follow && (path == "-" || parse_only)) usage();

  if (do_follow) return follow(path, quiet, idle_timeout_ms);

  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path, std::ios::binary);
    if (!file) {
      std::cerr << "koptlog_audit: cannot open " << path << "\n";
      return 2;
    }
    in = &file;
  }

  Trace trace;
  StreamingTraceParser parser(
      [&](const ProtocolEvent& e) { trace.events.push_back(e); });
  char buf[1 << 16];
  while (in->read(buf, sizeof buf), in->gcount() > 0) {
    parser.feed(std::string_view(buf, (size_t)in->gcount()));
  }
  parser.finish();
  trace.n = parser.n();

  if (!parser.errors().empty()) return print_errors(path, parser.errors());
  warn_torn(path, parser);
  if (!parser.have_meta()) {
    std::cerr << "koptlog_audit: " << path << ": no meta header seen\n";
    return 1;
  }
  if (parse_only) {
    if (!quiet)
      std::cout << "schema OK: " << trace.events.size() << " events, n="
                << trace.n << "\n";
    return 0;
  }

  AuditReport rep = audit_trace(trace);
  if (!rep.ok()) {
    std::cerr << rep.summary() << "\n";
    size_t shown = 0;
    for (const std::string& v : rep.violations) {
      if (++shown > 20) {
        std::cerr << "  ... (" << rep.violations.size() - 20 << " more)\n";
        break;
      }
      std::cerr << "  " << v << "\n";
    }
    return 1;
  }
  if (!quiet) std::cout << rep.summary() << "\n";
  return 0;
}
