// koptlog_fsck — offline integrity checker for the disk storage backend's
// directories. Runs the same ARIES-style analysis scan the backend itself
// uses at recovery (storage/disk/recovery.h) and reports, per process,
// what a restart would recover and what it would have to truncate.
//
//   koptlog_fsck DIR            # DIR holds p0/ p1/ ... (a --storage-dir)
//   koptlog_fsck DIR/p2         # a single process directory
//   koptlog_fsck --repair DIR   # additionally apply the truncations/unlinks
//
// Exit codes: 0 = consistent (possibly after dropping torn tails — that is
// the crash-recovery contract, not corruption), 1 = hard inconsistency a
// restart could not recover from, 2 = usage / unreadable input.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "storage/disk/recovery.h"

using namespace koptlog;
namespace fs = std::filesystem;

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: koptlog_fsck [--repair] [--quiet] DIR\n"
            << "  DIR: a --storage-dir root (containing p0/, p1/, ...) or a\n"
            << "  single process directory\n";
  std::exit(2);
}

struct Verdict {
  bool hard_error = false;
  bool damage = false;
};

Verdict check_one(const std::string& dir, bool repair, bool quiet) {
  disk::AnalysisResult r = disk::analyze_process_dir(dir);
  Verdict v;
  if (!r.found_any) {
    if (!quiet) std::cout << dir << ": no storage files\n";
    return v;
  }
  if (!quiet) {
    std::cout << dir << ": P" << r.report.pid << " n=" << r.report.n << "\n"
              << "  segments " << r.report.segments.size() << ", records "
              << r.report.msg_records << " msg / " << r.report.truncate_records
              << " truncate / " << r.report.discard_records << " discard\n"
              << "  journal  " << r.report.journal_records << " records\n"
              << "  recovered image: log [" << r.image.base << ", "
              << r.image.base + r.image.records.size() << "), "
              << r.image.checkpoints.size() << " checkpoint(s), "
              << r.image.journal.size() << " announcement(s), "
              << r.image.parked.size() << " parked, max_inc "
              << r.image.durable_max_inc << "\n";
  }
  for (const std::string& w : r.report.warnings) {
    v.damage = true;
    if (!quiet) std::cout << "  warning: " << w << "\n";
  }
  for (const std::string& e : r.report.errors) {
    v.hard_error = true;
    std::cout << "  ERROR: " << e << "\n";
  }
  if (repair && v.damage && !v.hard_error) {
    disk::repair_process_dir(r);
    if (!quiet) std::cout << "  repaired (torn tails truncated)\n";
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  bool repair = false;
  bool quiet = false;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--repair") repair = true;
    else if (a == "--quiet") quiet = true;
    else if (a.rfind("--", 0) == 0) usage();
    else if (dir.empty()) dir = a;
    else usage();
  }
  if (dir.empty()) usage();
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::cerr << "error: '" << dir << "' is not a directory\n";
    return 2;
  }

  // A root directory holds p<pid>/ children; a process directory holds the
  // files themselves.
  std::vector<std::string> targets;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    std::string name = e.path().filename().string();
    if (e.is_directory() && name.size() > 1 && name[0] == 'p' &&
        name.find_first_not_of("0123456789", 1) == std::string::npos) {
      targets.push_back(e.path().string());
    }
  }
  std::sort(targets.begin(), targets.end());
  if (targets.empty()) targets.push_back(dir);

  Verdict total;
  for (const std::string& t : targets) {
    Verdict v = check_one(t, repair, quiet);
    total.hard_error |= v.hard_error;
    total.damage |= v.damage;
  }
  if (total.hard_error) {
    std::cout << "fsck: FAILED (hard inconsistency)\n";
    return 1;
  }
  std::cout << "fsck: ok"
            << (total.damage ? " (recoverable damage"
                               + std::string(repair ? ", repaired)" : ")")
                             : "")
            << "\n";
  return 0;
}
