// koptlog_sim — scenario driver CLI: run any workload under any recovery
// configuration, on either execution backend, and print metrics, the
// correctness verdict, and (optionally) a space-time diagram of the run.
//
//   koptlog_sim --n 6 --k 2 --workload clientserver --injections 200
//               --failures 3 --seed 7 --dot run.dot --ascii
//   koptlog_sim --backend threaded --shards 3 --time-scale 0.05
//               --failures 2 --trace-out run.jsonl
//   dot -Tsvg run.dot -o run.svg     # your own Figure 1
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "app/workloads.h"
#include "core/cluster.h"
#include "core/engine_registry.h"
#include "core/failure_injector.h"
#include "core/metrics.h"
#include "core/timeline.h"
#include "exec/backend.h"
#include "obs/audit.h"
#include "obs/collector.h"
#include "obs/event_sink.h"
#include "obs/export.h"
#include "obs/health/health.h"
#include "obs/health/health_io.h"
#include "obs/health/health_sampler.h"
#include "obs/live_audit.h"
#include "obs/ring_recorder.h"
#include "obs/trace_io.h"

using namespace koptlog;

namespace {

struct Args {
  int n = 4;
  int k = -1;  // -1 = N (traditional optimistic)
  uint64_t seed = 1;
  std::string workload = "uniform";
  std::string engine = "kopt";  // kopt | direct | pessimistic | strom-yemini
  std::string backend = "sim";  // sim | threaded
  int shards = 2;
  double time_scale = 0.1;
  std::string mailbox = "batched";  // batched | mutex
  size_t mailbox_capacity = 0;      // 0 = unbounded
  int announce_fanout = 0;          // 0 = flat fan-out; D>=1 = D-ary tree
  int injections = 100;
  int ttl = 7;
  int failures = 0;
  SimTime horizon_ms = 1'000;
  SimTime flush_ms = 5;
  SimTime notify_ms = 10;
  SimTime checkpoint_ms = 100;
  SimTime sync_us = 500;
  std::string storage = "model";  // model | disk
  std::string storage_dir;
  SimTime group_commit_us = 300;
  bool fifo = false;
  bool reliable = false;
  bool no_gc = false;
  bool no_oracle = false;
  bool ascii = false;
  bool stats = false;
  bool list_engines = false;
  bool list_backends = false;
  std::string dot_file;
  std::string trace_out;
  std::string perfetto_out;
  std::string metrics_out;
  std::string record;  // "" = auto | vector | ring
  size_t ring_capacity = 4096;
  bool live_audit = false;
  int64_t metrics_interval_us = 1'000'000;
  std::string health_out;
  int64_t health_interval_us = 100'000;
  bool health_interval_set = false;
  bool list_health = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [options]\n"
      << "  --engine " << EngineRegistry::instance().names_joined()
      << "   (default kopt)\n"
      << "  --backend sim|threaded    execution backend (default sim)\n"
      << "  --workload uniform|pipeline|clientserver        (default uniform)\n"
      << "  --n INT           processes (default 4)\n"
      << "  --k INT           degree of optimism; -1 = N (default -1)\n"
      << "  --seed INT        run seed (default 1)\n"
      << "  --shards INT      threaded backend: worker threads (default 2)\n"
      << "  --time-scale F    threaded backend: real us per virtual us\n"
      << "                    (default 0.1 = 10x faster than nominal)\n"
      << "  --mailbox batched|mutex   threaded backend: cross-shard mailbox\n"
      << "                    (default batched; mutex = pre-batching baseline)\n"
      << "  --mailbox-capacity INT    threaded backend: per-shard occupancy\n"
      << "                    bound; injections block while a shard is full\n"
      << "                    (default 0 = unbounded)\n"
      << "  --announce-fanout INT     threaded backend: announcement\n"
      << "                    dissemination tree degree; each shard forwards\n"
      << "                    to at most D child shards instead of the origin\n"
      << "                    fanning out to all (default 0 = flat fan-out)\n"
      << "  --injections INT  environment requests (default 100)\n"
      << "  --ttl INT         uniform-workload hop budget (default 7)\n"
      << "  --failures INT    random crashes during the run (default 0)\n"
      << "  --horizon-ms INT  injection window (default 1000)\n"
      << "  --flush-ms/--notify-ms/--checkpoint-ms  logging cadence\n"
      << "  --sync-us INT     synchronous stable-storage write cost\n"
      << "  --storage model|disk      stable-storage backend (default model:\n"
      << "                    simulated costs only; disk = real segmented\n"
      << "                    on-disk log with group commit)\n"
      << "  --storage-dir DIR durable backend root; each process writes\n"
      << "                    DIR/p<pid>/ (required with --storage disk)\n"
      << "  --group-commit-us INT     disk backend: fsync coalescing window\n"
      << "                    (default 300)\n"
      << "  --fifo --reliable --no-gc --no-oracle   toggles\n"
      << "  --ascii           print a space-time diagram (sim backend)\n"
      << "  --dot FILE        write a Graphviz space-time diagram (sim)\n"
      << "  --stats           dump every counter/histogram\n"
      << "  --list-engines    print registered engines and exit\n"
      << "  --list-backends   print execution backends and exit\n"
      << "  --trace-out FILE.jsonl    record typed protocol events and write\n"
      << "                            the JSONL trace (koptlog_audit input)\n"
      << "  --perfetto-out FILE.json  record events and write a Chrome\n"
      << "                            trace-event file (open in\n"
      << "                            ui.perfetto.dev or chrome://tracing)\n"
      << "  --metrics-out FILE.txt    write every counter/histogram in\n"
      << "                            Prometheus text format\n"
      << "  --record vector|ring      recorder storage: unbounded vectors\n"
      << "                            merged post hoc (default), or bounded\n"
      << "                            SPSC rings drained live by a collector\n"
      << "                            thread (streaming JSONL, periodic\n"
      << "                            metrics snapshots, live audit)\n"
      << "  --ring-capacity INT       per-process ring slots (default 4096)\n"
      << "  --live-audit      verify Theorems 1-4 online as events stream\n"
      << "                    (implies --record ring); first violation is\n"
      << "                    printed immediately and the exit code is 1\n"
      << "  --metrics-interval-us INT live snapshot / flush cadence for the\n"
      << "                    collector's sinks (default 1000000)\n"
      << "  --health-out FILE.jsonl   append runtime health telemetry (per-\n"
      << "                    shard drain latency, mailbox occupancy, fsync\n"
      << "                    latency, collector lag) as schema-versioned\n"
      << "                    JSONL samples; view with koptlog_top\n"
      << "  --health-interval-us INT  health sampling tick (default 100000;\n"
      << "                    requires --health-out)\n"
      << "  --list-health     print every health metric the instrumentation\n"
      << "                    emits (domain, kind, meaning) and exit\n";
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  // Both "--flag value" and "--flag=value" spellings are accepted.
  std::string inline_val;
  bool has_inline = false;
  auto need = [&](int& i) -> std::string {
    if (has_inline) return inline_val;
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string f = argv[i];
    has_inline = false;
    if (f.rfind("--", 0) == 0) {
      if (size_t eq = f.find('='); eq != std::string::npos) {
        inline_val = f.substr(eq + 1);
        f.resize(eq);
        has_inline = true;
      }
    }
    if (f == "--engine") a.engine = need(i);
    else if (f == "--backend") a.backend = need(i);
    else if (f == "--workload") a.workload = need(i);
    else if (f == "--n") a.n = std::stoi(need(i));
    else if (f == "--k") a.k = std::stoi(need(i));
    else if (f == "--seed") a.seed = std::stoull(need(i));
    else if (f == "--shards") a.shards = std::stoi(need(i));
    else if (f == "--time-scale") a.time_scale = std::stod(need(i));
    else if (f == "--mailbox") a.mailbox = need(i);
    else if (f == "--mailbox-capacity")
      a.mailbox_capacity = static_cast<size_t>(std::stoull(need(i)));
    else if (f == "--announce-fanout") a.announce_fanout = std::stoi(need(i));
    else if (f == "--injections") a.injections = std::stoi(need(i));
    else if (f == "--ttl") a.ttl = std::stoi(need(i));
    else if (f == "--failures") a.failures = std::stoi(need(i));
    else if (f == "--horizon-ms") a.horizon_ms = std::stoll(need(i));
    else if (f == "--flush-ms") a.flush_ms = std::stoll(need(i));
    else if (f == "--notify-ms") a.notify_ms = std::stoll(need(i));
    else if (f == "--checkpoint-ms") a.checkpoint_ms = std::stoll(need(i));
    else if (f == "--sync-us") a.sync_us = std::stoll(need(i));
    else if (f == "--storage") a.storage = need(i);
    else if (f == "--storage-dir") a.storage_dir = need(i);
    else if (f == "--group-commit-us") a.group_commit_us = std::stoll(need(i));
    else if (f == "--fifo") a.fifo = true;
    else if (f == "--reliable") a.reliable = true;
    else if (f == "--no-gc") a.no_gc = true;
    else if (f == "--no-oracle") a.no_oracle = true;
    else if (f == "--ascii") a.ascii = true;
    else if (f == "--dot") a.dot_file = need(i);
    else if (f == "--stats") a.stats = true;
    else if (f == "--list-engines") a.list_engines = true;
    else if (f == "--list-backends") a.list_backends = true;
    else if (f == "--trace-out") a.trace_out = need(i);
    else if (f == "--perfetto-out") a.perfetto_out = need(i);
    else if (f == "--metrics-out") a.metrics_out = need(i);
    else if (f == "--record") a.record = need(i);
    else if (f == "--ring-capacity")
      a.ring_capacity = static_cast<size_t>(std::stoull(need(i)));
    else if (f == "--live-audit") a.live_audit = true;
    else if (f == "--metrics-interval-us")
      a.metrics_interval_us = std::stoll(need(i));
    else if (f == "--health-out") a.health_out = need(i);
    else if (f == "--health-interval-us") {
      a.health_interval_us = std::stoll(need(i));
      a.health_interval_set = true;
    }
    else if (f == "--list-health") a.list_health = true;
    else usage(argv[0]);
  }
  return a;
}

/// Fail fast on unwritable output paths: a long run must not end in a
/// silently truncated (or never-created) file. Probing creates/truncates
/// the file, which is what the real write would do anyway.
bool probe_writable(const std::string& path, const char* flag) {
  if (path.empty()) return true;
  std::ofstream probe(path);
  if (!probe) {
    std::cerr << "error: " << flag << " path '" << path
              << "' is not writable\n";
    return false;
  }
  return true;
}

void list_engines() {
  for (const auto& [name, entry] : EngineRegistry::instance().entries()) {
    std::cout << "  " << name << std::string(name.size() < 14 ? 14 - name.size() : 1, ' ')
              << entry.description << "\n";
  }
}

void list_backends() {
  for (const BackendInfo& b : backend_table()) {
    std::cout << "  " << b.name
              << std::string(b.name.size() < 14 ? 14 - b.name.size() : 1, ' ')
              << b.description << "\n";
  }
}

void list_health() {
  for (const HealthMetricInfo& m : health_metric_catalog()) {
    std::string key = m.domain + "/" + m.metric;
    std::cout << "  " << key
              << std::string(key.size() < 34 ? 34 - key.size() : 1, ' ')
              << m.kind << std::string(m.kind.size() < 10 ? 10 - m.kind.size() : 1, ' ')
              << m.help << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parse(argc, argv);
  if (a.list_engines || a.list_backends || a.list_health) {
    if (a.list_engines) {
      std::cout << "engines:\n";
      list_engines();
    }
    if (a.list_backends) {
      std::cout << "backends:\n";
      list_backends();
    }
    if (a.list_health) {
      std::cout << "health metrics (--health-out sidecar / koptlog_top):\n";
      list_health();
    }
    return 0;
  }
  if (a.health_interval_set && a.health_out.empty()) {
    std::cerr << "error: --health-interval-us requires --health-out (where "
                 "should the samples go?)\n";
    return 2;
  }
  if (!a.health_out.empty() && a.health_interval_us <= 0) {
    std::cerr << "error: --health-interval-us must be positive\n";
    return 2;
  }
  if (!probe_writable(a.trace_out, "--trace-out") ||
      !probe_writable(a.perfetto_out, "--perfetto-out") ||
      !probe_writable(a.metrics_out, "--metrics-out") ||
      !probe_writable(a.health_out, "--health-out") ||
      !probe_writable(a.dot_file, "--dot")) {
    return 2;
  }

  const EngineRegistry::Entry* engine =
      EngineRegistry::instance().find(a.engine);
  if (engine == nullptr) {
    std::cerr << "error: unknown engine '" << a.engine << "' (have: "
              << EngineRegistry::instance().names_joined(' ') << ")";
    std::vector<std::string> near = EngineRegistry::instance().suggestions(a.engine);
    if (!near.empty()) {
      std::cerr << " — did you mean ";
      for (size_t i = 0; i < near.size(); ++i) {
        std::cerr << (i ? " or " : "") << "'" << near[i] << "'";
      }
      std::cerr << "?";
    }
    std::cerr << "\n";
    return 2;
  }
  if (!is_backend(a.backend)) {
    std::cerr << "error: unknown backend '" << a.backend << "' (have:";
    for (const BackendInfo& b : backend_table()) std::cerr << " " << b.name;
    std::cerr << "); see --list-backends\n";
    return 2;
  }
  if (!is_mailbox_policy(a.mailbox)) {
    std::cerr << "error: unknown mailbox policy '" << a.mailbox
              << "' (have: batched mutex)\n";
    return 2;
  }
  if (a.announce_fanout < 0) {
    std::cerr << "error: --announce-fanout must be >= 0 (0 = flat fan-out)\n";
    return 2;
  }
  bool threaded = a.backend == "threaded";

  if (!a.record.empty() && a.record != "vector" && a.record != "ring") {
    std::cerr << "error: unknown --record mode '" << a.record
              << "' (have: vector ring)\n";
    return 2;
  }
  if (a.record == "vector" && a.live_audit) {
    std::cerr << "error: --live-audit needs the streaming pipeline; drop "
                 "--record=vector (or use koptlog_audit on the written "
                 "trace)\n";
    return 2;
  }
  const bool ring = a.record == "ring" || a.live_audit;
  if (ring && !a.perfetto_out.empty()) {
    std::cerr << "error: --perfetto-out needs the full in-memory trace; it "
                 "cannot be combined with --record=ring (the rings only hold "
                 "a bounded window)\n";
    return 2;
  }

  ClusterConfig cfg;
  cfg.n = a.n;
  cfg.seed = a.seed;
  cfg.fifo = a.fifo;
  cfg.enable_oracle = !a.no_oracle && !threaded;
  if (engine->configure) {
    engine->configure(cfg);
  } else {
    cfg.protocol.k = a.k < 0 ? ProtocolConfig::kUnboundedK : a.k;
  }
  cfg.protocol.flush_interval_us = a.flush_ms * 1000;
  cfg.protocol.notify_interval_us = a.notify_ms * 1000;
  cfg.protocol.checkpoint_interval_us = a.checkpoint_ms * 1000;
  cfg.protocol.storage.sync_write_us = a.sync_us;
  if (a.storage != "model" && a.storage != "disk") {
    std::cerr << "error: unknown storage backend '" << a.storage
              << "' (have: model disk)\n";
    return 2;
  }
  if (a.storage == "disk" && a.storage_dir.empty()) {
    std::cerr << "error: --storage disk requires --storage-dir\n";
    return 2;
  }
  // Health telemetry registry: declared before the host so the cells the
  // backends attach outlive them; the sampler (inside the sink, declared
  // after the host) is stopped before either is destroyed.
  const bool health_on = !a.health_out.empty();
  HealthRegistry health_registry;

  cfg.protocol.storage_backend.backend = a.storage;
  cfg.protocol.storage_backend.dir = a.storage_dir;
  cfg.protocol.storage_backend.group_commit_us = a.group_commit_us;
  cfg.protocol.storage_backend.threaded_io = threaded && a.storage == "disk";
  if (health_on) cfg.protocol.storage_backend.health = &health_registry;
  cfg.protocol.reliable_delivery = a.reliable;
  cfg.protocol.garbage_collect = !a.no_gc;
  cfg.record_events = ring || !a.trace_out.empty() || !a.perfetto_out.empty();
  // The threaded backend has no oracle: unless the user opted out, record
  // events so the run can be (and is, below) audited.
  if (threaded && !a.no_oracle) cfg.record_events = true;
  if (ring) {
    cfg.recording.mode = RecordMode::kRing;
    cfg.recording.ring_capacity = a.ring_capacity;
  }
  // In ring mode the recorders only retain a bounded residual window, so a
  // post-hoc audit of merged() would be vacuous: whenever a verdict is
  // wanted, run it online instead.
  const bool want_live_audit =
      ring && (a.live_audit || (threaded && !a.no_oracle));

  ClusterHost::AppFactory app =
      a.workload == "pipeline"       ? make_pipeline_app({})
      : a.workload == "clientserver" ? make_client_server_app({})
                                     : make_uniform_app({});

  BackendOptions bopt;
  bopt.name = a.backend;
  bopt.shards = a.shards;
  bopt.time_scale = a.time_scale;
  bopt.mailbox = a.mailbox;
  bopt.mailbox_capacity = a.mailbox_capacity;
  bopt.announce_fanout = a.announce_fanout;
  if (health_on) bopt.health = &health_registry;
  std::unique_ptr<ClusterHost> host =
      make_backend_host(bopt, cfg, app, engine->factory);
  ClusterHost& cluster = *host;

  // Streaming pipeline: collector thread draining the ring recorders into
  // the attached sinks, started before any event is produced.
  std::unique_ptr<LiveAudit> live_audit;
  std::unique_ptr<JsonlWriterSink> jsonl_sink;
  std::unique_ptr<MetricsSnapshotSink> metrics_sink;
  std::unique_ptr<LiveAuditSink> audit_sink;
  std::unique_ptr<HealthTimeseriesSink> health_sink;
  std::unique_ptr<EventCollector> collector;
  if (health_on) {
    // Ctor opens the sidecar and starts the sampler thread; destroyed (and
    // therefore stopped) before the host whose cells its probes read.
    HealthSampler::Options hopt;
    hopt.interval_us = a.health_interval_us;
    health_sink = std::make_unique<HealthTimeseriesSink>(
        health_registry, hopt, a.health_out);
    if (!health_sink->ok()) {
      std::cerr << "error: cannot write --health-out path '" << a.health_out
                << "'\n";
      return 2;
    }
  }
  if (ring) {
    std::vector<EventSink*> sinks;
    if (!a.trace_out.empty()) {
      jsonl_sink = std::make_unique<JsonlWriterSink>(a.trace_out, cfg.n);
      if (!jsonl_sink->ok()) {
        std::cerr << "error: cannot write " << a.trace_out << "\n";
        return 2;
      }
      sinks.push_back(jsonl_sink.get());
    }
    metrics_sink = std::make_unique<MetricsSnapshotSink>(a.metrics_out);
    if (health_on) {
      // Live Prometheus snapshots carry the health series too.
      metrics_sink->set_extra([&health_registry](std::ostream& os) {
        write_health_prometheus(health_registry.sample(0), os);
      });
    }
    sinks.push_back(metrics_sink.get());
    if (want_live_audit) {
      live_audit = std::make_unique<LiveAudit>(cfg.n);
      audit_sink = std::make_unique<LiveAuditSink>(*live_audit,
                                                   /*announce=*/true);
      sinks.push_back(audit_sink.get());
    }
    if (health_sink != nullptr) sinks.push_back(health_sink.get());
    EventCollector::Options copt;
    copt.tick_interval_us = a.metrics_interval_us;
    collector = std::make_unique<EventCollector>(*cluster.recording_mut(),
                                                 std::move(sinks), copt);
    if (health_on) {
      // Observe the observability pipeline itself: ring backlog and how far
      // the collector trails the producers. All lock-free reads.
      HealthDomain* dom = health_registry.domain("obs");
      Recording* rec = cluster.recording_mut();
      const int n = cfg.n;
      auto accepted = [rec, n] {
        uint64_t total = 0;
        for (int p = 0; p < n; ++p)
          total += static_cast<uint64_t>(rec->ring(p)->size());
        return total;
      };
      dom->probe_gauge("ring.occupancy", [rec, n] {
        int64_t total = 0;
        for (int p = 0; p < n; ++p)
          total += static_cast<int64_t>(rec->ring(p)->occupancy());
        return total;
      });
      dom->probe_counter("ring.dropped",
                         [rec] { return rec->total_dropped(); });
      dom->probe_counter("ring.accepted", accepted);
      EventCollector* coll = collector.get();
      dom->probe_counter("collector.collected",
                         [coll] { return coll->events_collected(); });
      dom->probe_gauge("collector.lag", [coll, accepted] {
        uint64_t acc = accepted();
        uint64_t got = coll->events_collected();
        return acc > got ? static_cast<int64_t>(acc - got) : 0;
      });
    }
    collector->start();
  }

  cluster.start();

  SimTime load_end = a.horizon_ms * 1000;
  if (a.workload == "pipeline") {
    inject_pipeline_load(cluster, a.injections, 1'000, load_end);
  } else if (a.workload == "clientserver") {
    inject_client_requests(cluster, a.injections, 1'000, load_end, a.seed + 3);
  } else {
    inject_uniform_load(cluster, a.injections, 1'000, load_end, a.ttl,
                        a.seed + 1);
  }
  if (a.failures > 0) {
    apply_failure_plan(cluster,
                       FailurePlan::random(Rng(a.seed).fork("cli"), a.n,
                                           a.failures, load_end / 10,
                                           load_end + load_end / 4));
  }

  cluster.run_for(load_end * 3);
  cluster.drain();
  cluster.shutdown();  // joins shard workers (no-op on the simulator)

  // Stop the health sampler while the host (whose cells the probes read) is
  // still alive. In ring mode the collector's close() does this below; the
  // direct call covers recorder-less runs and is idempotent.
  if (health_sink != nullptr && collector == nullptr) health_sink->close();

  if (collector != nullptr) {
    collector->stop();  // producers quiesced: drains the tail, final tick
    Stats& st = cluster.stats();
    st.merge(metrics_sink->stats());
    Recording& rec = *cluster.recording_mut();
    uint64_t max_occ = 0;
    for (int p = 0; p < cfg.n; ++p) {
      max_occ = std::max(max_occ, (uint64_t)rec.ring(p)->max_occupancy());
    }
    st.inc("obs.ring_capacity", (int64_t)rec.ring(0)->capacity());
    st.inc("obs.ring_max_occupancy", (int64_t)max_occ);
    st.inc("obs.collected_events", (int64_t)collector->events_collected());
  }

  std::cout << "engine=" << a.engine << " backend=" << a.backend;
  if (threaded) std::cout << " shards=" << a.shards;
  std::cout << " workload=" << a.workload
            << " n=" << a.n << " seed=" << a.seed << "\n"
            << "  delivered          " << cluster.stats().counter("msgs.delivered")
            << "\n  released           " << cluster.stats().counter("msgs.released")
            << "\n  outputs committed  " << cluster.outputs().size()
            << "\n  crashes/restarts   " << cluster.stats().counter("crash.count")
            << "/" << cluster.stats().counter("restart.count")
            << "\n  peer rollbacks     " << cluster.stats().counter("rollback.count")
            << "\n  orphans discarded  "
            << cluster.stats().counter("msgs.discarded_orphan_recv")
            << "\n  piggyback mean B   "
            << format_double(cluster.stats().histogram("msg.piggyback_bytes").mean(), 1)
            << "\n  commit p99 us      "
            << format_double(
                   cluster.stats().histogram("output.commit_latency_us").p99(), 0)
            << "\n  makespan ms        " << cluster.now_us() / 1000 << "\n";
  if (threaded) {
    // End-of-run mailbox health: how the cross-shard spine behaved. The
    // same counters appear in --metrics-out's Prometheus dump.
    const Stats& st = cluster.stats();
    std::cout << "  mailbox            policy=" << a.mailbox
              << " capacity=" << a.mailbox_capacity
              << " max_occupancy=" << st.counter("mailbox.max_occupancy")
              << "\n                     batches=" << st.counter("mailbox.drains")
              << " max_batch=" << st.counter("mailbox.max_drain_batch")
              << " wakeups=" << st.counter("mailbox.wakeups")
              << "\n                     stalls=" << st.counter("mailbox.producer_stalls")
              << " stall_us=" << st.counter("mailbox.producer_stall_us")
              << " soft_overflows=" << st.counter("mailbox.soft_overflows")
              << "\n";
  }

  if (a.stats) print_stats(cluster.stats(), std::cout);

  if (ring) {
    const Recording& rec = *cluster.recording();
    std::cout << "  ring               capacity=" << a.ring_capacity
              << " max_occupancy="
              << cluster.stats().counter("obs.ring_max_occupancy")
              << " collected=" << collector->events_collected()
              << " dropped=" << rec.total_dropped() << "\n";
  }

  if (!a.trace_out.empty()) {
    if (ring) {
      // The collector already streamed the trace; nothing left to write.
      std::cout << "wrote " << a.trace_out << " ("
                << jsonl_sink->events_written()
                << " events, streamed; verify: koptlog_audit " << a.trace_out
                << ")\n";
    } else if (write_trace_jsonl_file(*cluster.recording(), a.trace_out)) {
      std::cout << "wrote " << a.trace_out << " ("
                << cluster.recording()->total_events()
                << " events; verify: koptlog_audit " << a.trace_out << ")\n";
    } else {
      std::cerr << "error: cannot write " << a.trace_out << "\n";
      return 2;
    }
  }
  if (!a.perfetto_out.empty()) {
    std::ofstream out(a.perfetto_out);
    if (!out) {
      std::cerr << "error: cannot write " << a.perfetto_out << "\n";
      return 2;
    }
    write_perfetto_json(*cluster.recording(), out);
    std::cout << "wrote " << a.perfetto_out
              << " (open in ui.perfetto.dev or chrome://tracing)\n";
  }
  if (!a.metrics_out.empty()) {
    // Atomic replace (tmp + rename): a concurrent scraper — or the live
    // snapshot sink's reader — never observes a torn metrics file.
    std::string werr;
    bool ok = write_file_atomic(
        a.metrics_out,
        [&](std::ostream& out) {
          write_prometheus_text(cluster.stats(), out);
          if (health_on)
            write_health_prometheus(health_registry.sample(0), out);
        },
        werr);
    if (!ok) {
      std::cerr << "error: " << werr << "\n";
      return 2;
    }
    std::cout << "wrote " << a.metrics_out << "\n";
  }
  if (health_sink != nullptr) {
    std::cout << "wrote " << a.health_out << " ("
              << health_sink->sampler().ticks()
              << " health samples; view: koptlog_top --once " << a.health_out
              << ")\n";
  }

  int rc = 0;
  auto* sim_cluster = dynamic_cast<Cluster*>(host.get());
  if (live_audit != nullptr) {
    AuditReport rep = live_audit->report();
    std::cout << "live audit: " << rep.summary() << "\n";
    if (!rep.ok()) {
      if (!live_audit->first_violation().empty()) {
        std::cout << "  first violation: " << live_audit->first_violation()
                  << "\n";
      }
      rc = 1;
    }
  }
  if (sim_cluster != nullptr && sim_cluster->oracle() != nullptr) {
    Oracle::Report rep = sim_cluster->oracle()->verify(/*strict_thm4=*/true);
    std::cout << "oracle: " << rep.summary() << "\n";
    if (!rep.ok) rc = 1;
  } else if (!ring && cluster.recording() != nullptr) {
    // No single-threaded ground truth on the threaded backend: re-verify
    // Theorems 1-4 from the merged per-process event streams instead.
    Trace trace;
    trace.n = cluster.config().n;
    trace.events = cluster.recording()->merged();
    AuditReport rep = audit_trace(trace);
    std::cout << "audit: " << rep.summary() << "\n";
    rc = rep.ok() ? 0 : 1;
  }

  if (a.ascii && sim_cluster != nullptr && sim_cluster->oracle() != nullptr) {
    std::cout << "\n" << to_ascii(*sim_cluster->oracle());
  }
  if (!a.dot_file.empty() && sim_cluster != nullptr &&
      sim_cluster->oracle() != nullptr) {
    std::ofstream out(a.dot_file);
    if (!out || !(out << to_dot(*sim_cluster->oracle())) || !out.flush()) {
      std::cerr << "error: cannot write " << a.dot_file << "\n";
      return 2;
    }
    std::cout << "wrote " << a.dot_file << " (render: dot -Tsvg " << a.dot_file
              << " -o run.svg)\n";
  }
  return rc;
}
