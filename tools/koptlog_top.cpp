// koptlog_top — curses-free terminal dashboard over a health sidecar
// (--health-out JSONL from koptlog_sim, schema obs/health/health_io.h).
//
//   koptlog_top run_health.jsonl             # follow live, redraw each tick
//   koptlog_top --once run_health.jsonl      # one machine-readable snapshot
//
// Follow mode re-reads the (append-only) file on an interval, tolerates a
// torn final line, and redraws per-domain rows: the latest value of every
// metric plus a sparkline column of its recent trajectory. --once prints
// one stable `dom metric kind last min max [p50 p99]` table for scripts —
// no escape codes, no redraw.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/health/health.h"
#include "obs/health/health_io.h"

using namespace koptlog;

namespace {

struct Options {
  std::string path;
  bool once = false;
  int64_t interval_ms = 1000;
  int iterations = 0;  // follow mode: 0 = until killed (or file stops)
  int width = 32;      // sparkline columns
};

[[noreturn]] void usage(const char* argv0) {
  std::cout << "usage: " << argv0 << " [options] HEALTH.jsonl\n"
            << "  --once            print one machine-readable snapshot and exit\n"
            << "  --interval-ms INT follow-mode refresh cadence (default 1000)\n"
            << "  --iterations INT  follow mode: stop after N redraws (0 = run\n"
            << "                    until interrupted; useful for tests)\n"
            << "  --width INT       sparkline columns (default 32)\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  std::string inline_val;
  bool has_inline = false;
  auto need = [&](int& i) -> std::string {
    if (has_inline) return inline_val;
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string f = argv[i];
    has_inline = false;
    if (f.rfind("--", 0) == 0) {
      if (size_t eq = f.find('='); eq != std::string::npos) {
        inline_val = f.substr(eq + 1);
        f.resize(eq);
        has_inline = true;
      }
    }
    if (f == "--once") o.once = true;
    else if (f == "--interval-ms") o.interval_ms = std::stoll(need(i));
    else if (f == "--iterations") o.iterations = std::stoi(need(i));
    else if (f == "--width") o.width = std::stoi(need(i));
    else if (f.rfind("--", 0) == 0) usage(argv[0]);
    else if (o.path.empty()) o.path = f;
    else usage(argv[0]);
  }
  if (o.path.empty()) usage(argv[0]);
  if (o.width < 4) o.width = 4;
  return o;
}

/// One metric's trajectory across the file's ticks for one domain.
struct SeriesPoint {
  int64_t t_us;
  double v;
};
using SeriesMap = std::map<std::string, std::map<std::string, std::vector<SeriesPoint>>>;

struct Folded {
  SeriesMap series;                       // dom -> metric -> points
  std::map<std::string, std::string> kind;  // "dom/metric" -> c|g|h
  std::map<std::string, HealthHistogramSnapshot> last_hist;  // dom/metric
  size_t ticks = 0;
};

Folded fold(const HealthSeries& hs) {
  Folded f;
  for (const auto& tick : hs.ticks) {
    ++f.ticks;
    const std::string& dom = tick.domain.name;
    for (const auto& [name, v] : tick.domain.counters) {
      f.series[dom][name].push_back({tick.t_us, static_cast<double>(v)});
      f.kind[dom + "/" + name] = "c";
    }
    for (const auto& [name, v] : tick.domain.gauges) {
      f.series[dom][name].push_back({tick.t_us, static_cast<double>(v)});
      f.kind[dom + "/" + name] = "g";
    }
    for (const auto& [name, h] : tick.domain.histograms) {
      // Trajectory of the running p99; the final snapshot keeps the full
      // bucket detail for the table columns.
      f.series[dom][name].push_back({tick.t_us, h.quantile(0.99)});
      f.kind[dom + "/" + name] = "h";
      f.last_hist[dom + "/" + name] = h;
    }
  }
  return f;
}

/// ASCII sparkline (no UTF-8 assumptions in dumb terminals / CI logs):
/// 8 levels " .:-=+*#", min..max scaled per series.
std::string sparkline(const std::vector<SeriesPoint>& pts, int width) {
  static const char kLevels[] = " .:-=+*#";
  if (pts.empty()) return std::string(static_cast<size_t>(width), ' ');
  size_t n = pts.size();
  size_t take = std::min(n, static_cast<size_t>(width));
  double lo = pts[n - take].v, hi = lo;
  for (size_t i = n - take; i < n; ++i) {
    lo = std::min(lo, pts[i].v);
    hi = std::max(hi, pts[i].v);
  }
  std::string out;
  for (size_t i = n - take; i < n; ++i) {
    double frac = hi > lo ? (pts[i].v - lo) / (hi - lo) : 0.0;
    int lvl = static_cast<int>(frac * 7.0 + 0.5);
    out += kLevels[std::clamp(lvl, 0, 7)];
  }
  if (out.size() < static_cast<size_t>(width))
    out.insert(0, static_cast<size_t>(width) - out.size(), ' ');
  return out;
}

std::string fmt_num(double v) {
  std::ostringstream os;
  if (v == static_cast<double>(static_cast<int64_t>(v)) && std::abs(v) < 1e15) {
    os << static_cast<int64_t>(v);
  } else {
    os.precision(1);
    os << std::fixed << v;
  }
  return os.str();
}

int print_once(const Folded& f) {
  // Stable machine-readable table: one row per dom/metric, whitespace-
  // separated, sorted (map order). Scripts parse columns 1..4 (+5/6 for
  // histograms).
  std::cout << "# dom metric kind last min max [p50 p99]\n";
  for (const auto& [dom, metrics] : f.series) {
    for (const auto& [name, pts] : metrics) {
      const std::string key = dom + "/" + name;
      double last = pts.back().v, lo = pts[0].v, hi = pts[0].v;
      for (const SeriesPoint& p : pts) {
        lo = std::min(lo, p.v);
        hi = std::max(hi, p.v);
      }
      std::cout << dom << " " << name << " " << f.kind.at(key) << " "
                << fmt_num(last) << " " << fmt_num(lo) << " " << fmt_num(hi);
      auto it = f.last_hist.find(key);
      if (it != f.last_hist.end()) {
        std::cout << " " << fmt_num(it->second.quantile(0.5)) << " "
                  << fmt_num(it->second.quantile(0.99));
      }
      std::cout << "\n";
    }
  }
  return 0;
}

void print_follow(const Folded& f, const Options& o, size_t frame) {
  // Home the cursor and clear below — a poor man's full-screen redraw that
  // works in any ANSI terminal without curses.
  std::cout << "\x1b[H\x1b[J";
  std::cout << "koptlog_top — " << o.path << "  (frame " << frame << ", "
            << f.ticks << " ticks)\n\n";
  size_t name_w = 24;
  for (const auto& [dom, metrics] : f.series) {
    for (const auto& [name, pts] : metrics)
      name_w = std::max(name_w, name.size() + 1);
  }
  for (const auto& [dom, metrics] : f.series) {
    std::cout << dom << ":\n";
    for (const auto& [name, pts] : metrics) {
      const std::string key = dom + "/" + name;
      std::cout << "  " << name
                << std::string(name_w > name.size() ? name_w - name.size() : 1,
                               ' ')
                << "[" << sparkline(pts, o.width) << "] "
                << fmt_num(pts.back().v);
      auto it = f.last_hist.find(key);
      if (it != f.last_hist.end())
        std::cout << "  p99=" << fmt_num(it->second.quantile(0.99))
                  << " n=" << it->second.count;
      std::cout << "\n";
    }
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);

  auto load = [&](HealthSeries& hs, std::string& err) -> bool {
    std::ifstream in(o.path);
    if (!in) {
      err = "cannot read " + o.path;
      return false;
    }
    std::vector<std::string> errors;
    hs = read_health_jsonl(in, errors);
    if (!hs.have_meta && hs.ticks.empty()) {
      err = o.path + " contains no health samples (is it a --health-out "
            "sidecar?)";
      if (!errors.empty()) err += " [" + errors.front() + "]";
      return false;
    }
    return true;
  };

  if (o.once) {
    HealthSeries hs;
    std::string err;
    if (!load(hs, err)) {
      std::cerr << "error: " << err << "\n";
      return 2;
    }
    return print_once(fold(hs));
  }

  // Follow mode: re-read and redraw until interrupted (or --iterations).
  size_t frame = 0;
  int failures = 0;
  for (;;) {
    HealthSeries hs;
    std::string err;
    if (load(hs, err)) {
      failures = 0;
      print_follow(fold(hs), o, ++frame);
    } else if (++failures == 1) {
      std::cerr << "waiting: " << err << "\n";
    } else if (failures > 30) {
      std::cerr << "error: " << err << "\n";
      return 2;
    }
    if (o.iterations > 0 && frame >= static_cast<size_t>(o.iterations)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(o.interval_ms));
  }
  return 0;
}
