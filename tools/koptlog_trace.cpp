// koptlog_trace — interrogate a recorded JSONL protocol trace.
//
//   koptlog_trace explain-commit  TRACE OUTPUT      why did this output commit?
//   koptlog_trace explain-hold    TRACE MSG         what parked this message?
//   koptlog_trace explain-orphan  TRACE INTERVAL    why was this interval doomed?
//   koptlog_trace critical-path   TRACE [--perfetto-out FILE]
//   koptlog_trace whatif          TRACE [--k-sweep 0,1,2] [--check]
//   koptlog_trace diff            A B   hop-by-hop release/commit diff
//   koptlog_trace svg             TRACE [--out FILE]
//   koptlog_trace summary         TRACE
//
// Ids: messages/outputs are "P1:2" (sender:seq, "env:4" for environment
// injections); intervals are "(inc,sii)_pid" or "pid:inc:sii".
//
// Exit codes: 0 ok; 1 query target not found (--check mismatch, or diff
// of traces that are not one-to-one); 2 usage error, unreadable trace, or
// unwritable output path.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/causal_graph.h"
#include "analysis/critical_path.h"
#include "analysis/explain.h"
#include "analysis/spacetime_svg.h"
#include "analysis/trace_diff.h"
#include "analysis/whatif.h"
#include "obs/ids.h"
#include "obs/trace_io.h"

using namespace koptlog;
using namespace koptlog::analysis;

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: koptlog_trace COMMAND TRACE.jsonl [args]\n"
      << "  explain-commit TRACE OUTPUT     commit-closure chain of an output\n"
      << "  explain-hold   TRACE MSG        live deps that parked a message\n"
      << "  explain-orphan TRACE INTERVAL   path from announcement to orphan\n"
      << "  critical-path  TRACE [--perfetto-out FILE]\n"
      << "  whatif         TRACE [--k-sweep K0,K1,...] [--check]\n"
      << "  diff           A.jsonl B.jsonl [--top N]   release/commit diff\n"
      << "                 (two same-seed different-K runs isolate K)\n"
      << "  svg            TRACE [--out FILE]\n"
      << "  summary        TRACE\n"
      << "ids: message/output \"P1:2\" or \"env:4\"; interval \"(2,6)_3\" or "
         "\"3:2:6\"\n";
  std::exit(2);
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "error: cannot read trace '" << path << "'\n";
    std::exit(2);
  }
  std::vector<std::string> errors;
  Trace trace = read_trace_jsonl(is, errors);
  for (const std::string& e : errors) {
    std::cerr << "warning: " << path << ": " << e << "\n";
  }
  if (trace.n <= 0) {
    std::cerr << "error: '" << path
              << "' is not a koptlog trace (no valid meta header)\n";
    std::exit(2);
  }
  return trace;
}

std::vector<int> parse_sweep(const std::string& arg, int n) {
  std::vector<int> ks;
  std::stringstream ss(arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    try {
      size_t pos = 0;
      int k = std::stoi(tok, &pos);
      if (pos != tok.size() || k < 0) throw std::invalid_argument(tok);
      ks.push_back(k);
    } catch (const std::exception&) {
      std::cerr << "error: bad --k-sweep value '" << tok << "'\n";
      std::exit(2);
    }
  }
  if (ks.empty()) {
    for (int k = 0; k <= n; ++k) ks.push_back(k);
  }
  return ks;
}

MsgId parse_msg_or_die(const std::string& s) {
  if (auto id = parse_msg_id(s)) return *id;
  std::cerr << "error: '" << s << "' is not a message id (want \"P1:2\")\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  std::string cmd = argv[1];
  if (cmd == "diff") {
    if (argc < 4) usage();
    int top = 12;
    for (int i = 4; i < argc; ++i) {
      if (std::string(argv[i]) == "--top" && i + 1 < argc) {
        try {
          size_t pos = 0;
          top = std::stoi(argv[++i], &pos);
          if (pos != std::string(argv[i]).size() || top < 0) usage();
        } catch (const std::exception&) {
          usage();
        }
      } else {
        usage();
      }
    }
    Trace ta = load_trace(argv[2]);
    Trace tb = load_trace(argv[3]);
    CausalGraph ga(ta);
    CausalGraph gb(tb);
    TraceDiff d = diff_traces(ga, gb);
    print_trace_diff(d, std::cout, top);
    return d.comparable ? 0 : 1;
  }
  Trace trace = load_trace(argv[2]);
  CausalGraph graph(trace);

  if (cmd == "explain-commit") {
    if (argc != 4) usage();
    MsgId id = parse_msg_or_die(argv[3]);
    if (!explain_commit(graph, id, std::cout)) {
      std::cerr << "error: no output_commit for " << format_msg_id(id)
                << " in this trace\n";
      return 1;
    }
    return 0;
  }
  if (cmd == "explain-hold") {
    if (argc != 4) usage();
    MsgId id = parse_msg_or_die(argv[3]);
    if (!explain_hold(graph, id, std::cout)) {
      std::cerr << "error: no send of " << format_msg_id(id)
                << " in this trace\n";
      return 1;
    }
    return 0;
  }
  if (cmd == "explain-orphan") {
    if (argc != 4) usage();
    auto iv = parse_interval_id(argv[3]);
    if (!iv) {
      std::cerr << "error: '" << argv[3]
                << "' is not an interval id (want \"(2,6)_3\")\n";
      return 2;
    }
    if (!explain_orphan(graph, *iv, std::cout)) {
      std::cerr << "error: interval " << iv->str()
                << " does not appear in this trace\n";
      return 1;
    }
    return 0;
  }
  if (cmd == "critical-path") {
    std::string perfetto_out;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--perfetto-out" && i + 1 < argc) {
        perfetto_out = argv[++i];
      } else {
        usage();
      }
    }
    std::vector<FailureImpact> impacts = compute_critical_paths(graph);
    print_critical_paths(graph, impacts, std::cout);
    if (!perfetto_out.empty()) {
      if (!write_critical_path_perfetto(graph, impacts, perfetto_out)) {
        std::cerr << "error: cannot write " << perfetto_out << "\n";
        return 2;
      }
      std::cout << "wrote " << perfetto_out
                << " (open in ui.perfetto.dev next to the run's own "
                   "perfetto export)\n";
    }
    return 0;
  }
  if (cmd == "whatif") {
    std::string sweep;
    bool check = false;
    for (int i = 3; i < argc; ++i) {
      std::string f = argv[i];
      if (f == "--k-sweep" && i + 1 < argc) {
        sweep = argv[++i];
      } else if (f == "--check") {
        check = true;
      } else {
        usage();
      }
    }
    if (check) {
      WhatIfCheck res = whatif_self_check(graph);
      if (!res.ok) {
        std::cerr << "whatif self-check FAILED: " << res.detail << "\n";
        return 1;
      }
      std::cout << "whatif self-check ok: replay at the recorded K "
                   "reproduces every recorded release\n";
    }
    print_whatif(whatif_sweep(graph, parse_sweep(sweep, trace.n)),
                 std::cout);
    return 0;
  }
  if (cmd == "svg") {
    std::string out;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--out" && i + 1 < argc) {
        out = argv[++i];
      } else {
        usage();
      }
    }
    std::string svg = render_spacetime_svg(graph);
    if (out.empty()) {
      std::cout << svg;
    } else {
      std::ofstream os(out);
      if (!os || !(os << svg) || !os.flush()) {
        std::cerr << "error: cannot write " << out << "\n";
        return 2;
      }
      std::cout << "wrote " << out << "\n";
    }
    return 0;
  }
  if (cmd == "summary") {
    if (argc != 3) usage();
    std::cout << "trace: n=" << trace.n << ", " << trace.events.size()
              << " events, " << graph.intervals().size() << " intervals, "
              << graph.episodes().size() << " send-buffer episodes\n"
              << "  announcements " << graph.announce_events().size()
              << ", rollbacks " << graph.rollback_events().size()
              << ", checkpoints " << graph.checkpoint_events().size()
              << ", commits " << graph.commit_events().size()
              << ", retransmits " << graph.retransmit_events().size() << "\n";
    CriticalPathSummary cp =
        summarize_critical_paths(compute_critical_paths(graph));
    std::cout << "  critical path: max " << cp.max_hops << " hops, "
              << cp.forced_rollbacks << " forced rollbacks, settle max +"
              << cp.max_settle_us << " us\n";
    return 0;
  }
  usage();
}
